(* Tests for the fault-injection subsystem: plan generation and
   validation (lib/faults), retry policy, cluster liveness masking
   (flow network + baselines), defensive ledger releases, end-to-end
   kill → requeue → reschedule runs, and the conservation/determinism
   properties of the fault semantics.  Event-queue ordering properties
   live here too since the fault events lean on the FIFO tie-break. *)

module Comp_req = Hire.Comp_req
module Comp_store = Hire.Comp_store
module Transformer = Hire.Transformer
module Poly_req = Hire.Poly_req
module Pending = Hire.Pending
module Flow_network = Hire.Flow_network
module Cost_model = Hire.Cost_model
module Plan = Faults.Plan
module Policy = Faults.Policy
module Vec = Prelude.Vec
module Rng = Prelude.Rng

let store = Comp_store.default ()

let make_cluster ?(k = 4) ?(setup = Sim.Cluster.Homogeneous) ?(fraction = 1.0) ?(seed = 3) ()
    =
  Sim.Cluster.create ~inc_capable_fraction:fraction ~k ~setup
    ~services:(Array.to_list (Comp_store.service_names store))
    (Rng.create seed)

let poly_of_req ?(ids = Transformer.Id_gen.create ()) ?(job_id = 1) ?(seed = 5) req =
  Transformer.transform store ids (Rng.create seed) ~job_id ~arrival:0.0 req

let server_only_req n =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        {
          Comp_req.comp_id = "c0";
          template = "server";
          base = { Comp_req.instances = n; cpu = 2.0; mem = 4.0; duration = 30.0 };
          inc_alternatives = [];
        };
      ];
    connections = [];
  }

(* One task per server (cpu 50 of 96): [n] > server count leaves the
   tail of the group pending forever on an otherwise idle cluster. *)
let fat_server_req n =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        {
          Comp_req.comp_id = "c0";
          template = "server";
          base = { Comp_req.instances = n; cpu = 50.0; mem = 4.0; duration = 30.0 };
          inc_alternatives = [];
        };
      ];
    connections = [];
  }

let inc_req ?(service = "netchain") ?(n = 10) () =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        {
          Comp_req.comp_id = "c0";
          template = Option.get (Comp_store.template_of_service store service);
          base = { Comp_req.instances = n; cpu = 2.0; mem = 4.0; duration = 30.0 };
          inc_alternatives = [ service ];
        };
      ];
    connections = [];
  }

let expect_invalid msg f =
  Alcotest.(check bool) msg true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Fault plans                                                        *)
(* ------------------------------------------------------------------ *)

let small_config =
  {
    Plan.server_mtbf = 20.0;
    server_mttr = 5.0;
    switch_mtbf = 30.0;
    switch_mttr = 5.0;
    inc_weight = 1.0;
  }

let test_plan_deterministic () =
  let servers = Array.init 10 (fun i -> i) and switches = Array.init 5 (fun i -> 100 + i) in
  let gen seed =
    Plan.generate small_config (Rng.create seed) ~servers ~switches ~horizon:100.0
  in
  Alcotest.(check bool) "same seed, same plan" true (Plan.events (gen 42) = Plan.events (gen 42));
  Alcotest.(check bool) "plan is non-trivial" true (Plan.fail_count (gen 42) > 0)

let test_plan_alternates () =
  let servers = Array.init 10 (fun i -> i) and switches = Array.init 5 (fun i -> 100 + i) in
  let plan =
    Plan.generate small_config (Rng.create 11) ~servers ~switches ~horizon:100.0
  in
  let per_node = Hashtbl.create 16 in
  List.iter
    (fun (e : Plan.event) ->
      let prev = Option.value (Hashtbl.find_opt per_node e.Plan.node) ~default:[] in
      Hashtbl.replace per_node e.Plan.node (e :: prev))
    (Plan.events plan);
  Hashtbl.iter
    (fun _ evs ->
      ignore
        (List.fold_left
           (fun (expect, last_t) (e : Plan.event) ->
             Alcotest.(check string)
               "strict Fail/Recover alternation" (Plan.kind_to_string expect)
               (Plan.kind_to_string e.kind);
             Alcotest.(check bool) "strictly increasing times" true (e.time > last_t);
             if e.kind = Plan.Fail then
               Alcotest.(check bool) "failures at or before horizon" true (e.time <= 100.0);
             ((match e.kind with Plan.Fail -> Plan.Recover | Recover -> Plan.Fail), e.time))
           (Plan.Fail, neg_infinity) (List.rev evs)))
    per_node

let test_plan_inc_weight () =
  (* Push the failure rate of INC-capable switches up by seven orders of
     magnitude while everything else is effectively immortal: every
     drawn failure must land on a weighted (even-id) switch. *)
  let servers = Array.init 8 (fun i -> i) and switches = Array.init 4 (fun i -> 50 + i) in
  let config =
    {
      Plan.server_mtbf = 1e9;
      server_mttr = 10.0;
      switch_mtbf = 1e9;
      switch_mttr = 10.0;
      inc_weight = 1e7;
    }
  in
  let plan =
    Plan.generate
      ~inc_capable:(fun n -> n mod 2 = 0)
      config (Rng.create 3) ~servers ~switches ~horizon:200.0
  in
  Alcotest.(check bool) "weighted switches do fail" true (Plan.fail_count plan > 0);
  List.iter
    (fun (e : Plan.event) ->
      Alcotest.(check bool) "only INC-capable switches affected" true
        (e.Plan.node >= 50 && e.Plan.node mod 2 = 0))
    (Plan.events plan)

let test_plan_scripted_validates () =
  let ev time node kind = { Plan.time; node; kind } in
  (* Valid out-of-order script gets sorted. *)
  let p =
    Plan.scripted [ ev 3.0 1 Plan.Fail; ev 1.0 1 Plan.Fail; ev 2.0 1 Plan.Recover ]
  in
  Alcotest.(check int) "length" 3 (Plan.length p);
  Alcotest.(check int) "fail count" 2 (Plan.fail_count p);
  Alcotest.(check (list (float 1e-9))) "sorted" [ 1.0; 2.0; 3.0 ]
    (List.map (fun (e : Plan.event) -> e.Plan.time) (Plan.events p));
  expect_invalid "recover before fail" (fun () -> Plan.scripted [ ev 1.0 1 Plan.Recover ]);
  expect_invalid "double fail" (fun () ->
      Plan.scripted [ ev 1.0 1 Plan.Fail; ev 2.0 1 Plan.Fail ]);
  expect_invalid "equal times on one node" (fun () ->
      Plan.scripted [ ev 1.0 1 Plan.Fail; ev 1.0 1 Plan.Recover ]);
  expect_invalid "negative time" (fun () -> Plan.scripted [ ev (-1.0) 1 Plan.Fail ]);
  expect_invalid "non-finite time" (fun () -> Plan.scripted [ ev Float.nan 1 Plan.Fail ])

(* ------------------------------------------------------------------ *)
(* Retry policy                                                       *)
(* ------------------------------------------------------------------ *)

let test_policy_delay () =
  let p = Policy.default in
  Alcotest.(check (float 1e-9)) "first retry" 1.0 (Policy.delay p ~attempt:1);
  Alcotest.(check (float 1e-9)) "second doubles" 2.0 (Policy.delay p ~attempt:2);
  Alcotest.(check (float 1e-9)) "third doubles again" 4.0 (Policy.delay p ~attempt:3);
  expect_invalid "attempt must be positive" (fun () -> Policy.delay p ~attempt:0);
  expect_invalid "negative retry budget" (fun () -> Policy.create ~max_retries:(-1) ());
  expect_invalid "non-positive backoff" (fun () -> Policy.create ~backoff:0.0 ());
  expect_invalid "multiplier below one" (fun () -> Policy.create ~multiplier:0.5 ())

(* ------------------------------------------------------------------ *)
(* Cluster liveness and defensive releases                            *)
(* ------------------------------------------------------------------ *)

let test_cluster_fail_recover () =
  let c = make_cluster () in
  let s = (Topology.Fat_tree.servers (Sim.Cluster.topo c)).(0) in
  Alcotest.(check bool) "initially alive" true (Sim.Cluster.is_alive c s);
  Sim.Cluster.fail_node c ~time:5.0 s;
  Alcotest.(check bool) "dead after fail" false (Sim.Cluster.is_alive c s);
  Alcotest.(check int) "one dead node" 1 (Sim.Cluster.n_dead c);
  expect_invalid "double fail rejected" (fun () -> Sim.Cluster.fail_node c ~time:6.0 s);
  expect_invalid "placement on a dead server rejected" (fun () ->
      Sim.Cluster.place_server_task c ~server:s ~demand:(Vec.of_list [ 1.0; 1.0 ]));
  Alcotest.(check (float 1e-9)) "recover returns the fail time" 5.0
    (Sim.Cluster.recover_node c s);
  Alcotest.(check bool) "alive again" true (Sim.Cluster.is_alive c s);
  expect_invalid "recovering an alive node rejected" (fun () ->
      ignore (Sim.Cluster.recover_node c s))

let test_switch_liveness_masks_sharing () =
  let c = make_cluster () in
  let sharing = Sim.Cluster.sharing c in
  let sw = (Topology.Fat_tree.tor_switches (Sim.Cluster.topo c)).(0) in
  Alcotest.(check bool) "supports netchain when alive" true
    (Hire.Sharing.supports sharing ~switch:sw ~service:"netchain");
  Sim.Cluster.fail_node c ~time:1.0 sw;
  Alcotest.(check bool) "dead switch supports nothing" false
    (Hire.Sharing.supports sharing ~switch:sw ~service:"netchain");
  Alcotest.(check bool) "static capability survives the outage" true
    (Hire.Sharing.supported_services sharing sw <> []);
  ignore (Sim.Cluster.recover_node c sw);
  Alcotest.(check bool) "supports again after recovery" true
    (Hire.Sharing.supports sharing ~switch:sw ~service:"netchain")

let test_server_over_release_rejected () =
  let c = make_cluster () in
  let s = (Topology.Fat_tree.servers (Sim.Cluster.topo c)).(0) in
  Sim.Cluster.place_server_task c ~server:s ~demand:(Vec.of_list [ 10.0; 10.0 ]);
  expect_invalid "refund beyond capacity rejected" (fun () ->
      Sim.Cluster.release_server_task c ~server:s ~demand:(Vec.of_list [ 20.0; 10.0 ]));
  (* Fresh cluster: exact release is fine, releasing twice is not. *)
  let c = make_cluster () in
  let demand = Vec.of_list [ 10.0; 10.0 ] in
  Sim.Cluster.place_server_task c ~server:s ~demand;
  Sim.Cluster.release_server_task c ~server:s ~demand;
  expect_invalid "double release rejected" (fun () ->
      Sim.Cluster.release_server_task c ~server:s ~demand)

let test_switch_double_release_rejected () =
  let c = make_cluster () in
  let poly = poly_of_req (inc_req ()) in
  let tg = List.hd (Poly_req.network_groups poly) in
  let sw = (Topology.Fat_tree.tor_switches (Sim.Cluster.topo c)).(0) in
  ignore (Sim.Cluster.place_network_task c ~switch:sw ~tg ~shared:true);
  Sim.Cluster.release_network_task c ~switch:sw ~tg ~shared:true;
  Alcotest.(check bool) "ledger back to zero" true
    (Vec.is_zero (Sim.Cluster.switch_used_total c));
  expect_invalid "second release rejected" (fun () ->
      Sim.Cluster.release_network_task c ~switch:sw ~tg ~shared:true)

(* ------------------------------------------------------------------ *)
(* Dead nodes are masked from placement                               *)
(* ------------------------------------------------------------------ *)

let build_net ?(now = 1.0) cluster jobs =
  let census = Hire.Locality.Task_census.create (Sim.Cluster.topo cluster) in
  Flow_network.build (Sim.Cluster.view cluster) census ~jobs ~now
    ~params:Cost_model.default_params

let test_flow_network_skips_dead_nodes () =
  let c = make_cluster () in
  let dead_server = (Topology.Fat_tree.servers (Sim.Cluster.topo c)).(0) in
  let dead_tor = (Topology.Fat_tree.tor_switches (Sim.Cluster.topo c)).(0) in
  Sim.Cluster.fail_node c ~time:1.0 dead_server;
  Sim.Cluster.fail_node c ~time:1.0 dead_tor;
  (* One task per machine per round: 16 servers minus the dead one. *)
  let sjob = Pending.of_poly (poly_of_req (server_only_req 16)) in
  let outcome = Flow_network.solve_and_extract (build_net c [ sjob ]) in
  Alcotest.(check int) "only the alive servers place" 15 (List.length outcome.placements);
  List.iter
    (fun (_, m) ->
      Alcotest.(check bool) "never the dead server" true (m <> dead_server))
    outcome.placements;
  (* Past the flavor-preference window the INC variant is chosen; its
     switch placements must avoid the dead ToR. *)
  let ijob = Pending.of_poly (poly_of_req ~job_id:2 (inc_req ())) in
  let outcome = Flow_network.solve_and_extract (build_net ~now:2.5 c [ ijob ]) in
  List.iter
    (fun (_, m) ->
      Alcotest.(check bool) "never a dead node" true (m <> dead_server && m <> dead_tor))
    outcome.placements

let test_baseline_feasibility_skips_dead () =
  let c = make_cluster () in
  let s = (Topology.Fat_tree.servers (Sim.Cluster.topo c)).(0) in
  let demand = Vec.of_list [ 1.0; 1.0 ] in
  Alcotest.(check bool) "fits when alive" true
    (Schedulers.Policy_util.server_fits c ~server:s ~demand);
  Sim.Cluster.fail_node c ~time:1.0 s;
  Alcotest.(check bool) "dead server never fits" false
    (Schedulers.Policy_util.server_fits c ~server:s ~demand);
  ignore (Sim.Cluster.recover_node c s);
  Alcotest.(check bool) "fits again after recovery" true
    (Schedulers.Policy_util.server_fits c ~server:s ~demand)

(* ------------------------------------------------------------------ *)
(* End-to-end: kill, requeue, reschedule, cancel                      *)
(* ------------------------------------------------------------------ *)

(* Fail every node in [nodes] at [t], recover at [t +. down]: whatever
   the scheduler chose, the running tasks are on some of them. *)
let blanket_outage nodes ~t ~down =
  Plan.scripted
    (Array.to_list nodes
    |> List.concat_map (fun n ->
           [
             { Plan.time = t; node = n; kind = Plan.Fail };
             { Plan.time = t +. down; node = n; kind = Plan.Recover };
           ]))

let check_conserved name cluster =
  Alcotest.(check bool) (name ^ ": switch ledgers fully released") true
    (Vec.is_zero (Sim.Cluster.switch_used_total cluster));
  Array.iter
    (fun s ->
      Alcotest.(check bool) (name ^ ": server ledger fully released") true
        (Vec.equal (Sim.Cluster.server_available cluster s)
           (Sim.Cluster.server_capacity cluster)))
    (Topology.Fat_tree.servers (Sim.Cluster.topo cluster))

let test_kill_requeue_reschedule () =
  let cluster = make_cluster () in
  let servers = Topology.Fat_tree.servers (Sim.Cluster.topo cluster) in
  let faults = blanket_outage servers ~t:5.0 ~down:0.5 in
  let arrivals = [ (0.0, poly_of_req (server_only_req 4)) ] in
  let sched = Schedulers.Registry.create "yarn-concurrent" ~seed:17 cluster in
  let result = Sim.Simulator.run ~faults cluster sched arrivals in
  let r = result.Sim.Simulator.report in
  Alcotest.(check int) "every server failed once" 16 r.Sim.Metrics.node_fails;
  Alcotest.(check int) "every server recovered" 16 r.Sim.Metrics.node_recoveries;
  Alcotest.(check int) "all four running tasks killed" 4 r.Sim.Metrics.tasks_killed;
  Alcotest.(check int) "all four requeued" 4 r.Sim.Metrics.requeues;
  Alcotest.(check int) "nothing cancelled" 0 r.Sim.Metrics.fault_cancels;
  Alcotest.(check int) "group re-satisfied" r.Sim.Metrics.tgs_total
    r.Sim.Metrics.tgs_satisfied;
  Alcotest.(check int) "reschedule latency sampled" 1
    (Obs.Histogram.count r.Sim.Metrics.time_to_reschedule);
  Alcotest.(check bool) "downtime sampled" true
    (Obs.Histogram.count r.Sim.Metrics.node_downtime > 0);
  check_conserved "yarn-concurrent" cluster

let test_cancel_after_retry_budget () =
  let cluster = make_cluster () in
  let servers = Topology.Fat_tree.servers (Sim.Cluster.topo cluster) in
  let faults = blanket_outage servers ~t:5.0 ~down:0.5 in
  let fault_policy = Policy.create ~max_retries:0 () in
  let arrivals = [ (0.0, poly_of_req (server_only_req 4)) ] in
  let sched = Schedulers.Registry.create "hire" ~seed:17 cluster in
  let result = Sim.Simulator.run ~faults ~fault_policy cluster sched arrivals in
  let r = result.Sim.Simulator.report in
  Alcotest.(check int) "killed tasks" 4 r.Sim.Metrics.tasks_killed;
  Alcotest.(check int) "no requeues with a zero budget" 0 r.Sim.Metrics.requeues;
  Alcotest.(check int) "all four cancelled" 4 r.Sim.Metrics.fault_cancels;
  Alcotest.(check int) "group counted cancelled" 1 r.Sim.Metrics.tgs_cancelled;
  Alcotest.(check int) "group not satisfied" 0 r.Sim.Metrics.tgs_satisfied;
  check_conserved "hire" cluster

let test_inc_tasks_survive_switch_outage () =
  let cluster = make_cluster () in
  let switches = Topology.Fat_tree.switches (Sim.Cluster.topo cluster) in
  (* Kill every switch well after the flavor decision (~2.5 s) so the
     INC instances are running, then bring them back before the retry. *)
  let faults = blanket_outage switches ~t:8.0 ~down:0.5 in
  let arrivals = [ (0.0, poly_of_req (inc_req ~n:4 ())) ] in
  let sched = Schedulers.Registry.create "hire" ~seed:17 cluster in
  let result = Sim.Simulator.run ~faults cluster sched arrivals in
  let r = result.Sim.Simulator.report in
  Alcotest.(check bool) "INC instances were killed" true (r.Sim.Metrics.tasks_killed > 0);
  Alcotest.(check bool) "killed instances requeued" true (r.Sim.Metrics.requeues > 0);
  Alcotest.(check int) "no retry exhaustion" 0 r.Sim.Metrics.fault_cancels;
  Alcotest.(check int) "every group resolved" r.Sim.Metrics.tgs_total
    (r.Sim.Metrics.tgs_satisfied + r.Sim.Metrics.tgs_cancelled);
  check_conserved "hire/inc" cluster

let test_gang_cancel_releases_held_siblings () =
  (* A gang that can never assemble: 20 one-per-server tasks on 16
     servers.  Killing one held instance with a zero retry budget must
     cancel the group AND tear down the 15 surviving holders; without
     the teardown they leak their servers for the rest of the run while
     the scheduler keeps feeding the doomed gang. *)
  let cluster = make_cluster () in
  let servers = Topology.Fat_tree.servers (Sim.Cluster.topo cluster) in
  let faults =
    Plan.scripted
      [
        { Plan.time = 5.0; node = servers.(0); kind = Plan.Fail };
        { Plan.time = 6.0; node = servers.(0); kind = Plan.Recover };
      ]
  in
  let fault_policy = Policy.create ~max_retries:0 () in
  let arrivals = [ (0.0, poly_of_req (fat_server_req 20)) ] in
  let sched = Schedulers.Registry.create "yarn-concurrent" ~seed:17 cluster in
  let config = { Sim.Simulator.default_config with gang = true } in
  let result = Sim.Simulator.run ~config ~faults ~fault_policy cluster sched arrivals in
  let r = result.Sim.Simulator.report in
  Alcotest.(check int) "all 16 holders torn down" 16 r.Sim.Metrics.tasks_killed;
  Alcotest.(check int) "no requeues with a zero budget" 0 r.Sim.Metrics.requeues;
  Alcotest.(check int) "one killed task cancelled" 1 r.Sim.Metrics.fault_cancels;
  Alcotest.(check int) "group counted cancelled" 1 r.Sim.Metrics.tgs_cancelled;
  Alcotest.(check int) "group never satisfied" 0 r.Sim.Metrics.tgs_satisfied;
  Alcotest.(check bool) "scheduler dropped the pending tail" false
    (sched.Sim.Scheduler_intf.pending ());
  check_conserved "gang-cancel" cluster

let test_faults_past_drain_clamped () =
  (* hard_end = last arrival + drain = 300.  The fail at 250 is in the
     window; its recover at 1000 is clamped to 300 so the outage stays
     paired.  The 400/450 pair is entirely outside and must neither
     deliver events nor stretch the run past the drain window. *)
  let cluster = make_cluster () in
  let servers = Topology.Fat_tree.servers (Sim.Cluster.topo cluster) in
  let faults =
    Plan.scripted
      [
        { Plan.time = 250.0; node = servers.(0); kind = Plan.Fail };
        { Plan.time = 1000.0; node = servers.(0); kind = Plan.Recover };
        { Plan.time = 400.0; node = servers.(1); kind = Plan.Fail };
        { Plan.time = 450.0; node = servers.(1); kind = Plan.Recover };
      ]
  in
  let arrivals = [ (0.0, poly_of_req (server_only_req 4)) ] in
  let sched = Schedulers.Registry.create "yarn-concurrent" ~seed:17 cluster in
  let result = Sim.Simulator.run ~faults cluster sched arrivals in
  let r = result.Sim.Simulator.report in
  Alcotest.(check int) "only the in-window fail delivered" 1 r.Sim.Metrics.node_fails;
  Alcotest.(check int) "clamped recover delivered" 1 r.Sim.Metrics.node_recoveries;
  Alcotest.(check int) "one downtime sample" 1
    (Obs.Histogram.count r.Sim.Metrics.node_downtime);
  Alcotest.(check bool) "run does not outlive the drain window" true
    (result.Sim.Simulator.end_time <= 300.0 +. 1e-9);
  check_conserved "past-drain" cluster

let test_requeue_before_first_satisfaction_feeds_latency () =
  (* The group (20 one-per-server tasks) is still partially pending when
     server 0 dies, so its requeue precedes its first full placement.
     The eventual first satisfaction must feed the placement-latency
     histogram (dropping it would bias the figure by exactly the slow
     cases) in addition to time-to-reschedule. *)
  let cluster = make_cluster () in
  let servers = Topology.Fat_tree.servers (Sim.Cluster.topo cluster) in
  let faults =
    Plan.scripted
      [
        { Plan.time = 5.0; node = servers.(0); kind = Plan.Fail };
        { Plan.time = 5.5; node = servers.(0); kind = Plan.Recover };
      ]
  in
  let arrivals = [ (0.0, poly_of_req (fat_server_req 20)) ] in
  let sched = Schedulers.Registry.create "yarn-concurrent" ~seed:17 cluster in
  let result = Sim.Simulator.run ~faults cluster sched arrivals in
  let r = result.Sim.Simulator.report in
  Alcotest.(check int) "one task killed and requeued" 1 r.Sim.Metrics.requeues;
  Alcotest.(check int) "nothing cancelled" 0 r.Sim.Metrics.fault_cancels;
  Alcotest.(check int) "group eventually satisfied" r.Sim.Metrics.tgs_total
    r.Sim.Metrics.tgs_satisfied;
  Alcotest.(check int) "placement latency sampled once" 1
    (Obs.Histogram.count r.Sim.Metrics.placement_latency);
  Alcotest.(check int) "reschedule latency sampled once" 1
    (Obs.Histogram.count r.Sim.Metrics.time_to_reschedule);
  check_conserved "requeue-latency" cluster

let test_fault_run_deterministic () =
  let spec =
    {
      Harness.Experiment.default with
      scheduler = "hire";
      k = 4;
      horizon = 60.0;
      mu = 0.5;
      faults =
        Some
          {
            Faults.plan =
              {
                Plan.default_config with
                server_mtbf = 30.0;
                switch_mtbf = 60.0;
                server_mttr = 5.0;
                switch_mttr = 5.0;
              };
            policy = Policy.default;
          };
    }
  in
  let show () = Format.asprintf "%a" Sim.Metrics.pp_report (Harness.Experiment.run spec) in
  Alcotest.(check string) "identical spec, identical report" (show ()) (show ())

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

(* Equal-timestamp events pop in insertion order; the payload is the
   global insertion index, so per timestamp indices must increase. *)
let prop_event_queue_fifo_ties =
  QCheck.Test.make ~name:"event queue: equal timestamps pop in insertion order" ~count:200
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 60))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let q = Sim.Event_queue.create () in
      for i = 0 to n - 1 do
        (* Few distinct timestamps, so ties are the common case. *)
        Sim.Event_queue.push q ~time:(float_of_int (Rng.int rng 5)) i
      done;
      let rec drain acc =
        match Sim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, i) -> drain ((t, i) :: acc)
      in
      let popped = drain [] in
      let times = List.map fst popped in
      let last_idx = Hashtbl.create 8 in
      List.length popped = n
      && List.sort compare times = times
      && List.for_all
           (fun (t, i) ->
             let ok =
               match Hashtbl.find_opt last_idx t with None -> true | Some j -> j < i
             in
             Hashtbl.replace last_idx t i;
             ok)
           popped)

(* Simulation-style interleaving: pushes never schedule before the
   current time, so pops must come out in non-decreasing time order and
   per-timestamp in insertion order. *)
let prop_event_queue_interleaved =
  QCheck.Test.make ~name:"event queue: interleaved push/pop preserves time order" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let q = Sim.Event_queue.create () in
      let now = ref 0.0 in
      let next_idx = ref 0 in
      let popped = ref [] in
      for _ = 1 to 120 do
        if Rng.bool rng || Sim.Event_queue.is_empty q then begin
          Sim.Event_queue.push q ~time:(!now +. float_of_int (Rng.int rng 3)) !next_idx;
          incr next_idx
        end
        else
          match Sim.Event_queue.pop q with
          | None -> ()
          | Some (t, i) ->
              now := Float.max !now t;
              popped := (t, i) :: !popped
      done;
      let rec drain () =
        match Sim.Event_queue.pop q with
        | None -> ()
        | Some (t, i) ->
            now := Float.max !now t;
            popped := (t, i) :: !popped;
            drain ()
      in
      drain ();
      let popped = List.rev !popped in
      let times = List.map fst popped in
      let last_idx = Hashtbl.create 8 in
      List.length popped = !next_idx
      && List.sort compare times = times
      && List.for_all
           (fun (t, i) ->
             let ok =
               match Hashtbl.find_opt last_idx t with None -> true | Some j -> j < i
             in
             Hashtbl.replace last_idx t i;
             ok)
           popped)

(* ISSUE acceptance property: across seeded fail → kill → recover →
   reschedule cycles, total cluster capacity is exactly conserved once
   the run drains, and no task group is left stuck in the scheduler —
   every group finished, fell back, or was cancelled — under all five
   schedulers.  (Satisfied+cancelled need not equal the raw group total:
   timeout/concurrent modes intentionally leave the unraced sibling
   variant of a decided job unresolved in the per-group accounting.) *)
let prop_capacity_conserved_under_faults =
  QCheck.Test.make ~name:"capacity conserved across fault cycles (all schedulers)" ~count:3
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      List.for_all
        (fun name ->
          let rng = Rng.create seed in
          let cluster = make_cluster ~seed:(seed land 0xFFFF) () in
          let topo = Sim.Cluster.topo cluster in
          let ids = Transformer.Id_gen.create () in
          let arrivals =
            List.init 6 (fun i ->
                let req = if i mod 2 = 0 then inc_req () else server_only_req 3 in
                ( float_of_int i,
                  Transformer.transform store ids rng ~job_id:i ~arrival:(float_of_int i)
                    req ))
          in
          let faults =
            Plan.generate
              {
                Plan.server_mtbf = 25.0;
                server_mttr = 3.0;
                switch_mtbf = 40.0;
                switch_mttr = 3.0;
                inc_weight = 1.0;
              }
              (Rng.create (seed + 7919))
              ~servers:(Topology.Fat_tree.servers topo)
              ~switches:(Topology.Fat_tree.switches topo) ~horizon:30.0
          in
          let fault_policy = Policy.create ~max_retries:2 ~backoff:0.5 () in
          let sched = Schedulers.Registry.create name ~seed:17 cluster in
          let result = Sim.Simulator.run ~faults ~fault_policy cluster sched arrivals in
          let r = result.Sim.Simulator.report in
          let conserved =
            Vec.is_zero (Sim.Cluster.switch_used_total cluster)
            && Array.for_all
                 (fun s ->
                   Vec.equal
                     (Sim.Cluster.server_available cluster s)
                     (Sim.Cluster.server_capacity cluster))
                 (Topology.Fat_tree.servers topo)
          in
          let resolved =
            (not (sched.Sim.Scheduler_intf.pending ()))
            && r.Sim.Metrics.tgs_satisfied + r.Sim.Metrics.tgs_cancelled
               <= r.Sim.Metrics.tgs_total
          in
          if not (conserved && resolved) then
            QCheck.Test.fail_reportf "%s: conserved=%b resolved=%b (seed %d)" name
              conserved resolved seed
          else true)
        [ "hire"; "yarn-concurrent"; "k8-timeout"; "sparrow-concurrent"; "coco-timeout" ])

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "faults"
    [
      ( "plan",
        [
          quick "deterministic from seed" test_plan_deterministic;
          quick "per-node alternation" test_plan_alternates;
          quick "inc_weight targets capable switches" test_plan_inc_weight;
          quick "scripted validation" test_plan_scripted_validates;
        ] );
      ("policy", [ quick "delay and validation" test_policy_delay ]);
      ( "cluster",
        [
          quick "fail/recover lifecycle" test_cluster_fail_recover;
          quick "switch liveness masks sharing" test_switch_liveness_masks_sharing;
          quick "server over-release rejected" test_server_over_release_rejected;
          quick "switch double release rejected" test_switch_double_release_rejected;
        ] );
      ( "masking",
        [
          quick "flow network skips dead nodes" test_flow_network_skips_dead_nodes;
          quick "baseline feasibility skips dead" test_baseline_feasibility_skips_dead;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "kill, requeue, reschedule" `Slow test_kill_requeue_reschedule;
          Alcotest.test_case "cancel after retry budget" `Slow test_cancel_after_retry_budget;
          Alcotest.test_case "INC tasks survive switch outage" `Slow
            test_inc_tasks_survive_switch_outage;
          Alcotest.test_case "gang cancel releases held siblings" `Slow
            test_gang_cancel_releases_held_siblings;
          Alcotest.test_case "plan events past drain clamped" `Slow
            test_faults_past_drain_clamped;
          Alcotest.test_case "requeue before first satisfaction feeds latency" `Slow
            test_requeue_before_first_satisfaction_feeds_latency;
          Alcotest.test_case "fault runs deterministic" `Slow test_fault_run_deterministic;
        ] );
      ( "properties",
        qt
          [
            prop_event_queue_fifo_ties;
            prop_event_queue_interleaved;
            prop_capacity_conserved_under_faults;
          ] );
    ]
