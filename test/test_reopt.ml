(* Tests for the re-optimizing solve path (docs/PERFORMANCE.md): the
   monotone bucket queue's exact pop-order equivalence with the binary
   heap (tie-heavy and word-boundary keys included), Fast-vs-Classic
   solver agreement, touched-arc flow-reset exactness, and the
   end-to-end property that a run with [reopt = true] (the default) is
   placement-for-placement identical to [--no-reopt] — with and without
   fault injection. *)

module Graph = Flow.Graph
module Mcmf = Flow.Mcmf
module Heap = Prelude.Heap
module Bucket_queue = Prelude.Bucket_queue
module Comp_store = Hire.Comp_store
module Vec = Prelude.Vec
module Rng = Prelude.Rng

let store = Comp_store.default ()

(* ------------------------------------------------------------------ *)
(* Bucket queue vs binary heap                                         *)
(* ------------------------------------------------------------------ *)

let drain_heap h =
  let acc = ref [] in
  while not (Heap.Int_pair.is_empty h) do
    let k = Heap.Int_pair.min_key h in
    let v = Heap.Int_pair.pop h in
    acc := (k, v) :: !acc
  done;
  List.rev !acc

let drain_bucket q =
  let acc = ref [] in
  while not (Bucket_queue.is_empty q) do
    let k = Bucket_queue.min_key q in
    let v = Bucket_queue.pop q in
    acc := (k, v) :: !acc
  done;
  List.rev !acc

let test_pop_order_equivalence () =
  let rng = Rng.create 42 in
  let h = Heap.Int_pair.create () in
  let q = Bucket_queue.create () in
  for round = 1 to 20 do
    Heap.Int_pair.clear h;
    Bucket_queue.clear q;
    let n = 50 + (round * 37) in
    (* Tiny key range -> massive ties; distinct values so the expected
       lexicographic order is unambiguous. *)
    let key_range = if round mod 2 = 0 then 8 else 300 in
    let entries =
      List.init n (fun v -> (Rng.int_in rng 0 (key_range - 1), (v * 7919) mod 100003))
    in
    List.iter
      (fun (k, v) ->
        Heap.Int_pair.push h k v;
        Bucket_queue.push q k v)
      entries;
    let from_heap = drain_heap h in
    let from_bucket = drain_bucket q in
    let expected =
      List.sort
        (fun (k1, v1) (k2, v2) ->
          if k1 <> k2 then Int.compare k1 k2 else Int.compare v1 v2)
        entries
    in
    Alcotest.(check bool) "heap pops canonical order" true (from_heap = expected);
    Alcotest.(check bool) "bucket pops canonical order" true (from_bucket = expected)
  done

(* Regression for the occupancy bitset: keys on and across the 32-bit
   word boundaries must neither vanish nor reorder. *)
let test_word_boundary_keys () =
  let q = Bucket_queue.create () in
  let keys = [ 0; 30; 31; 32; 33; 62; 63; 64; 65; 95; 96; 127; 128; 1000 ] in
  List.iteri (fun i k -> Bucket_queue.push q k i) keys;
  Alcotest.(check int) "size counts all pushes" (List.length keys) (Bucket_queue.size q);
  let drained = drain_bucket q in
  let expected = List.sort compare (List.mapi (fun i k -> (k, i)) keys) in
  Alcotest.(check bool) "word-boundary keys pop in order" true (drained = expected)

(* Dijkstra-shaped interleaving: pops are monotone and pushes land at or
   above the current front, across several generations of [clear]. *)
let test_monotone_interleaving () =
  let rng = Rng.create 7 in
  let h = Heap.Int_pair.create () in
  let q = Bucket_queue.create () in
  for _gen = 1 to 5 do
    Heap.Int_pair.clear h;
    Bucket_queue.clear q;
    for v = 0 to 9 do
      Heap.Int_pair.push h 0 v;
      Bucket_queue.push q 0 v
    done;
    let steps = ref 400 in
    while (not (Heap.Int_pair.is_empty h)) && !steps > 0 do
      decr steps;
      let hk = Heap.Int_pair.min_key h in
      let qk = Bucket_queue.min_key q in
      Alcotest.(check int) "same min key" hk qk;
      let hv = Heap.Int_pair.pop h in
      let qv = Bucket_queue.pop q in
      Alcotest.(check int) "same popped value" hv qv;
      (* Relax: push a few successors at key >= the popped key. *)
      if Rng.bernoulli rng 0.6 then
        for _ = 1 to Rng.int_in rng 1 3 do
          let nk = hk + Rng.int_in rng 0 40 in
          let nv = Rng.int_in rng 0 100000 in
          Heap.Int_pair.push h nk nv;
          Bucket_queue.push q nk nv
        done
    done;
    Alcotest.(check bool) "drained together" (Heap.Int_pair.is_empty h)
      (Bucket_queue.is_empty q)
  done

let test_push_below_front_rejected () =
  let q = Bucket_queue.create () in
  Bucket_queue.push q 5 1;
  ignore (Bucket_queue.pop q);
  Bucket_queue.push q 9 2;
  ignore (Bucket_queue.min_key q);
  (* front is now 9; pushing behind it violates monotonicity *)
  Alcotest.check_raises "push below front"
    (Invalid_argument "Bucket_queue.push: key 3 below monotone front 9") (fun () ->
      Bucket_queue.push q 3 7)

(* ------------------------------------------------------------------ *)
(* Fast vs Classic solver                                              *)
(* ------------------------------------------------------------------ *)

(* Random balanced min-cost-flow instance.  [cost_lo] below 0 exercises
   the SPFA bootstrap (and disables the bucket queue). *)
let random_instance rng ~n ~extra_arcs ~cost_lo ~cost_hi =
  let g = Graph.create () in
  let first = Graph.add_nodes g n in
  (* A random spanning chain keeps most of the supply routable. *)
  for v = first + 1 to first + n - 1 do
    ignore
      (Graph.add_arc g ~src:(v - 1) ~dst:v
         ~cap:(Rng.int_in rng 1 10)
         ~cost:(Rng.int_in rng (max 0 cost_lo) cost_hi))
  done;
  for _ = 1 to extra_arcs do
    let a = Rng.int_in rng 0 (n - 1) and b = Rng.int_in rng 0 (n - 1) in
    if a <> b then begin
      (* When negative costs are in play, keep every arc pointing
         forward along the chain: the graph stays a DAG, so no negative
         cycle can form and the SPFA bootstrap terminates. *)
      let src, dst = if cost_lo < 0 && a > b then (b, a) else (a, b) in
      ignore
        (Graph.add_arc g ~src ~dst
           ~cap:(Rng.int_in rng 1 8)
           ~cost:(Rng.int_in rng cost_lo cost_hi))
    end
  done;
  let total = ref 0 in
  for _ = 1 to max 1 (n / 3) do
    let s = Rng.int_in rng 0 (n / 2) in
    let amt = Rng.int_in rng 1 4 in
    Graph.add_supply g s amt;
    total := !total + amt
  done;
  Graph.add_supply g (n - 1) (- !total);
  g

let test_fast_equals_classic () =
  let rng = Rng.create 11 in
  for case = 1 to 40 do
    let cost_lo = if case mod 5 = 0 then -6 else 0 in
    let g1 = random_instance rng ~n:(5 + (case mod 20)) ~extra_arcs:(3 * case mod 50)
        ~cost_lo ~cost_hi:12 in
    let g2 = Graph.copy g1 in
    let rc = Mcmf.solve ~algo:Mcmf.Classic g1 in
    let rf = Mcmf.solve ~algo:Mcmf.Fast g2 in
    Alcotest.(check int) "same shipped" rc.Mcmf.shipped rf.Mcmf.shipped;
    Alcotest.(check int) "same objective" rc.Mcmf.total_cost rf.Mcmf.total_cost;
    Alcotest.(check int) "same unshipped" rc.Mcmf.unshipped rf.Mcmf.unshipped
  done

(* The bucket queue is auto-selected on small costs; adding one dead
   (zero-capacity) very expensive arc pushes the cost envelope past the
   selection bound and forces the binary heap, without affecting any
   routable path.  The two solves must agree flow-for-flow — queue
   selection is invisible, not just objective-preserving. *)
let test_bucket_heap_flows_identical () =
  let rng = Rng.create 23 in
  for case = 1 to 25 do
    let g_bucket =
      random_instance rng ~n:(6 + (case mod 12)) ~extra_arcs:(2 * case mod 30)
        ~cost_lo:0 ~cost_hi:9
    in
    let g_heap = Graph.copy g_bucket in
    let dead =
      Graph.add_arc g_heap ~src:0 ~dst:(Graph.node_count g_heap - 1) ~cap:0
        ~cost:(1 lsl 20)
    in
    ignore dead;
    Alcotest.(check bool) "envelope raised" true (Graph.cost_ub g_heap > 1 lsl 16);
    let rb = Mcmf.solve g_bucket in
    let rh = Mcmf.solve g_heap in
    Alcotest.(check int) "same shipped" rh.Mcmf.shipped rb.Mcmf.shipped;
    Alcotest.(check int) "same objective" rh.Mcmf.total_cost rb.Mcmf.total_cost;
    Graph.iter_arcs g_bucket (fun a ->
        Alcotest.(check int) "same per-arc flow" (Graph.flow g_heap a) (Graph.flow g_bucket a))
  done

(* ------------------------------------------------------------------ *)
(* Touched-arc flow reset                                              *)
(* ------------------------------------------------------------------ *)

let test_reset_touched_exact () =
  let rng = Rng.create 31 in
  for case = 1 to 15 do
    let g = random_instance rng ~n:(5 + case) ~extra_arcs:(2 * case) ~cost_lo:0 ~cost_hi:7 in
    Graph.set_flow_tracking g true;
    ignore (Mcmf.solve g);
    (* A second solve on the already-consumed residual network dirties
       more pairs (including reverse pushes); the record must dedupe and
       still restore everything. *)
    ignore (Mcmf.solve g);
    let restored = Graph.reset_touched_flows g in
    Alcotest.(check bool) "restored some pairs" true (restored >= 0);
    Graph.iter_arcs g (fun a ->
        Alcotest.(check int) "flow zero" 0 (Graph.flow g a);
        Alcotest.(check int) "residual = capacity" (Graph.capacity g a)
          (Graph.residual_cap g a))
  done;
  (* corrupt_flow is also a tracked mutation: chaos corruption on the
     persistent graph must not survive the reset. *)
  let g = random_instance (Rng.create 5) ~n:6 ~extra_arcs:6 ~cost_lo:0 ~cost_hi:5 in
  Graph.set_flow_tracking g true;
  let some_arc = ref (-1) in
  Graph.iter_arcs g (fun a -> if !some_arc < 0 then some_arc := a);
  Graph.corrupt_flow g !some_arc 3;
  ignore (Graph.reset_touched_flows g);
  Alcotest.(check int) "corruption undone" 0 (Graph.flow g !some_arc);
  (* Tracking off -> the call falls back to the full sweep. *)
  Graph.set_flow_tracking g false;
  ignore (Mcmf.solve g);
  let swept = Graph.reset_touched_flows g in
  Alcotest.(check int) "fallback sweeps the arena" (Graph.arc_count g) swept

(* ------------------------------------------------------------------ *)
(* End-to-end property: reopt == cold                                  *)
(* ------------------------------------------------------------------ *)

(* One full simulation cell; same structure as test_incremental's, with
   the reopt flag as the axis under test (incremental stays on — reopt
   is meaningless without the persistent builder). *)
let run_cell ~reopt ~seed ~mu ~faults_on ~horizon =
  let rng = Rng.create seed in
  let trace_rng = Rng.split rng in
  let scenario_rng = Rng.split rng in
  let cluster_rng = Rng.split rng in
  let fault_rng = Rng.split rng in
  let services = Array.to_list (Comp_store.service_names store) in
  let cluster =
    Sim.Cluster.create ~inc_capable_fraction:0.5 ~k:4 ~setup:Sim.Cluster.Homogeneous
      ~services cluster_rng
  in
  let trace_config =
    Workload.Trace_gen.scaled_rate
      ~n_servers:(Sim.Cluster.n_servers cluster)
      ~target_utilization:0.8 Workload.Trace_gen.default
  in
  let trace = Workload.Trace_gen.generate trace_config trace_rng ~horizon in
  let scenario = Sim.Scenario.build store scenario_rng ~mu trace in
  let sched = Schedulers.Registry.create ~reopt "hire" ~seed:17 cluster in
  let log = Buffer.create 1024 in
  let wrapped =
    {
      sched with
      Sim.Scheduler_intf.round =
        (fun ~time ->
          let r = sched.Sim.Scheduler_intf.round ~time in
          Buffer.add_string log (Printf.sprintf "t=%.6f" time);
          List.iter
            (fun (p : Sim.Scheduler_intf.placement) ->
              Buffer.add_string log
                (Printf.sprintf " %d->%d" p.tg.Hire.Poly_req.tg_id p.machine))
            r.Sim.Scheduler_intf.placements;
          List.iter
            (fun (tg : Hire.Poly_req.task_group) ->
              Buffer.add_string log (Printf.sprintf " !%d" tg.Hire.Poly_req.tg_id))
            r.Sim.Scheduler_intf.cancelled;
          Buffer.add_char log '\n';
          r);
    }
  in
  let faults, fault_policy =
    if not faults_on then (None, None)
    else begin
      let topo = Sim.Cluster.topo cluster in
      let sharing = Sim.Cluster.sharing cluster in
      let plan =
        Faults.Plan.generate
          { Faults.Plan.default_config with server_mtbf = 80.0; switch_mtbf = 80.0 }
          fault_rng
          ~inc_capable:(fun s -> Hire.Sharing.supported_services sharing s <> [])
          ~servers:(Topology.Fat_tree.servers topo)
          ~switches:(Topology.Fat_tree.switches topo)
          ~horizon
      in
      (Some plan, Some (Faults.Policy.create ~max_retries:2 ()))
    end
  in
  let result =
    Sim.Simulator.run ?faults ?fault_policy cluster wrapped scenario.Sim.Scenario.arrivals
  in
  let ledger =
    String.concat ";"
      (Array.to_list
         (Array.map
            (fun s -> Vec.to_string (Sim.Cluster.server_available cluster s))
            (Topology.Fat_tree.servers (Sim.Cluster.topo cluster))))
  in
  (Buffer.contents log, ledger, result.Sim.Simulator.report)

let report_summary (r : Sim.Metrics.report) =
  Printf.sprintf "jobs=%d inc=%d/%d tgs=%d/%d unserved=%d rounds=%d detour=%.6f"
    r.Sim.Metrics.jobs_total r.Sim.Metrics.inc_jobs_served r.Sim.Metrics.inc_jobs_total
    r.Sim.Metrics.tgs_satisfied r.Sim.Metrics.tgs_total r.Sim.Metrics.inc_tgs_unserved
    r.Sim.Metrics.rounds r.Sim.Metrics.detour_mean

let prop_reopt_identical =
  QCheck.Test.make ~name:"reopt solves identical to cold resets (e2e)" ~count:8
    QCheck.(triple (int_range 0 1_000_000) (float_range 0.0 1.0) bool)
    (fun (seed, mu, faults_on) ->
      let horizon = 60.0 in
      let log_c, ledger_c, rep_c = run_cell ~reopt:false ~seed ~mu ~faults_on ~horizon in
      let log_r, ledger_r, rep_r = run_cell ~reopt:true ~seed ~mu ~faults_on ~horizon in
      if not (String.equal log_c log_r) then
        QCheck.Test.fail_reportf "placement logs diverge (seed=%d mu=%.3f faults=%b)" seed
          mu faults_on;
      if not (String.equal ledger_c ledger_r) then
        QCheck.Test.fail_reportf "final ledgers diverge (seed=%d mu=%.3f faults=%b)" seed mu
          faults_on;
      if not (String.equal (report_summary rep_c) (report_summary rep_r)) then
        QCheck.Test.fail_reportf "reports diverge (seed=%d): %s vs %s" seed
          (report_summary rep_c) (report_summary rep_r);
      true)

let test_cell_key_escape_hatch () =
  let base = Harness.Experiment.default in
  Alcotest.(check string)
    "reopt default keeps the historical key"
    (Harness.Experiment.cell_key base)
    (Harness.Experiment.cell_key { base with reopt = true });
  Alcotest.(check bool)
    "escape hatch gets its own cells" false
    (String.equal
       (Harness.Experiment.cell_key base)
       (Harness.Experiment.cell_key { base with reopt = false }));
  Alcotest.(check bool)
    "describe flags the escape hatch" true
    (let d = Harness.Experiment.describe { base with reopt = false } in
     let needle = "-reopt" in
     let n = String.length d and m = String.length needle in
     let rec scan i = i + m <= n && (String.sub d i m = needle || scan (i + 1)) in
     scan 0)

let test_spec_blob_roundtrip () =
  let base = Harness.Experiment.default in
  List.iter
    (fun spec ->
      let back = Harness.Experiment.spec_of_blob (Harness.Experiment.spec_to_blob spec) in
      Alcotest.(check bool) "spec round-trips" true (back = spec))
    [ base; { base with reopt = false }; { base with reopt = false; incremental = false } ]

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "reopt"
    [
      ( "bucket-queue",
        [
          Alcotest.test_case "pop order equals binary heap" `Quick
            test_pop_order_equivalence;
          Alcotest.test_case "word-boundary keys" `Quick test_word_boundary_keys;
          Alcotest.test_case "monotone interleaving" `Quick test_monotone_interleaving;
          Alcotest.test_case "push below front rejected" `Quick
            test_push_below_front_rejected;
        ] );
      ( "solver",
        [
          Alcotest.test_case "fast equals classic" `Quick test_fast_equals_classic;
          Alcotest.test_case "bucket and heap flows identical" `Quick
            test_bucket_heap_flows_identical;
        ] );
      ( "graph",
        [ Alcotest.test_case "touched reset exact" `Quick test_reset_touched_exact ] );
      ( "end-to-end",
        qt [ prop_reopt_identical ]
        @ [
            Alcotest.test_case "cell_key escape hatch" `Quick test_cell_key_escape_hatch;
            Alcotest.test_case "spec blob round-trip" `Quick test_spec_blob_roundtrip;
          ] );
    ]
