(* Tests for the admission-API server (docs/SERVER.md): the JSON codec
   and wire protocol against adversarial inputs (oversized lines,
   truncated and malformed JSON, nesting bombs, unknown ops — each
   yields a structured error, never an exception and never a journal
   record), the admission engine (idempotency keys, backpressure,
   batching), a forked end-to-end socket exchange, and the headline
   crash-recovery property: kill the server at any WAL record between
   ack and placement, recover, and verify that no acked admission is
   lost and the final metrics row and WAL are byte-identical to an
   uninterrupted run. *)

module Json = Server.Json
module Protocol = Server.Protocol
module Admission = Server.Admission
module Chaos = Journal.Chaos
module Experiment = Harness.Experiment

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                 *)
(* ------------------------------------------------------------------ *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "hire_server_test_%d_%d" (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [
      ("null", Json.Null);
      ("true", Json.Bool true);
      ("false", Json.Bool false);
      ("0", Json.Num 0.0);
      ("-3", Json.Num (-3.0));
      ("1.5", Json.Num 1.5);
      ({|"hi"|}, Json.Str "hi");
      ({|""|}, Json.Str "");
      ("[]", Json.Arr []);
      ("[1,2]", Json.Arr [ Json.Num 1.0; Json.Num 2.0 ]);
      ("{}", Json.Obj []);
      ( {|{"a":1,"b":[true,null]}|},
        Json.Obj
          [ ("a", Json.Num 1.0); ("b", Json.Arr [ Json.Bool true; Json.Null ]) ] );
    ]
  in
  List.iter
    (fun (text, v) ->
      (match Json.parse text with
      | Ok v' -> Alcotest.(check bool) ("parses: " ^ text) true (v = v')
      | Error e -> Alcotest.failf "%s failed to parse: %s" text e);
      Alcotest.(check string) ("emits: " ^ text) text (Json.to_string v))
    cases;
  (* escapes decode and re-encode *)
  (match Json.parse {|"a\n\t\"\\\u0041\u00e9"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "escapes" "a\n\t\"\\A\xc3\xa9" s
  | _ -> Alcotest.fail "escape string must parse");
  (* whitespace tolerated around one value *)
  Alcotest.(check bool) "surrounding whitespace" true
    (Json.parse "  { \"a\" : 1 }  " = Ok (Json.Obj [ ("a", Json.Num 1.0) ]))

let test_json_adversarial () =
  let bomb depth = String.concat "" (List.init depth (fun _ -> "[")) in
  let cases =
    [
      ("empty", "");
      ("truncated object", {|{"a":|});
      ("truncated string", {|"abc|});
      ("truncated escape", {|"ab\|});
      ("bad escape", {|"a\q"|});
      ("bad unicode escape", {|"\u12g4"|});
      ("unpaired surrogate", {|"\ud800"|});
      ("lone low surrogate", {|"\udc00"|});
      ("raw control byte", "\"a\x01b\"");
      ("trailing garbage", "1 2");
      ("two values", "{}{}");
      ("bare word", "nul");
      ("number with no digits", "-");
      ("exponent with no digits", "1e");
      ("missing comma", {|[1 2]|});
      ("missing colon", {|{"a" 1}|});
      ("unterminated array", "[1,2");
      ("nesting bomb", bomb 100_000);
      ("deep but closed", bomb 64 ^ String.concat "" (List.init 64 (fun _ -> "]")));
    ]
  in
  List.iter
    (fun (name, text) ->
      match Json.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s must fail closed" name)
    cases

let prop_json_never_raises =
  QCheck.Test.make ~name:"json: arbitrary bytes never raise" ~count:1000
    QCheck.(string_gen_of_size Gen.(int_range 0 64) Gen.char)
    (fun s ->
      match Json.parse s with Ok _ | Error _ -> true)

let prop_json_roundtrips_own_output =
  let rec gen_value depth =
    let open QCheck.Gen in
    if depth = 0 then
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun f -> Json.Num f) (float_bound_inclusive 1000.0);
          map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 8));
        ]
    else
      frequency
        [
          (2, gen_value 0);
          (1, map (fun l -> Json.Arr l) (list_size (int_range 0 4) (gen_value (depth - 1))));
          ( 1,
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair (string_size ~gen:printable (int_range 1 6)) (gen_value (depth - 1))))
          );
        ]
  in
  QCheck.Test.make ~name:"json: to_string output re-parses to the same value"
    ~count:300
    (QCheck.make (gen_value 3))
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' -> Json.to_string v = Json.to_string v'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

let submit_line =
  {|{"op":"submit","priority":"batch","groups":[{"count":2,"cpu":1.0,"mem":2.0,"duration":10.0}]}|}

let test_protocol_parses_valid_ops () =
  (match Protocol.parse_request submit_line with
  | Ok (Protocol.Submit js) ->
      Alcotest.(check int) "one group" 1 (List.length js.Protocol.groups);
      Alcotest.(check bool) "no inc" true (js.Protocol.inc = Protocol.No_inc);
      Alcotest.(check (option string)) "no client id" None js.Protocol.client_id
  | Ok _ -> Alcotest.fail "parsed as the wrong op"
  | Error e -> Alcotest.failf "valid submit rejected: %s" e);
  (match Protocol.parse_request {|{"op":"status","id":3}|} with
  | Ok (Protocol.Status 3) -> ()
  | _ -> Alcotest.fail "status must parse");
  (match Protocol.parse_request {|{"op":"stats"}|} with
  | Ok Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats must parse");
  (match Protocol.parse_request {|{"op":"drain"}|} with
  | Ok Protocol.Drain -> ()
  | _ -> Alcotest.fail "drain must parse");
  match Protocol.parse_request {|{"op":"shutdown"}|} with
  | Ok Protocol.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown must parse"

let test_protocol_adversarial () =
  let giant = String.make (Protocol.max_line_bytes + 1) 'x' in
  let too_many_groups =
    let g = {|{"count":1,"cpu":1.0,"mem":1.0,"duration":1.0}|} in
    Printf.sprintf
      {|{"op":"submit","priority":"batch","groups":[%s]}|}
      (String.concat "," (List.init (Protocol.max_groups + 1) (fun _ -> g)))
  in
  let cases =
    [
      ("oversized line", giant);
      ("not json", "hello");
      ("truncated json", {|{"op":"sub|});
      ("non-object", "[1,2,3]");
      ("missing op", {|{"id":1}|});
      ("unknown op", {|{"op":"reboot"}|});
      ("op wrong type", {|{"op":7}|});
      ("submit without groups", {|{"op":"submit","priority":"batch"}|});
      ("submit empty groups", {|{"op":"submit","priority":"batch","groups":[]}|});
      ("submit too many groups", too_many_groups);
      ( "unknown priority",
        {|{"op":"submit","priority":"urgent","groups":[{"count":1,"cpu":1.0,"mem":1.0,"duration":1.0}]}|}
      );
      ( "zero count",
        {|{"op":"submit","priority":"batch","groups":[{"count":0,"cpu":1.0,"mem":1.0,"duration":1.0}]}|}
      );
      ( "fractional count",
        {|{"op":"submit","priority":"batch","groups":[{"count":1.5,"cpu":1.0,"mem":1.0,"duration":1.0}]}|}
      );
      ( "negative cpu",
        {|{"op":"submit","priority":"batch","groups":[{"count":1,"cpu":-1.0,"mem":1.0,"duration":1.0}]}|}
      );
      ( "overflowing duration",
        {|{"op":"submit","priority":"batch","groups":[{"count":1,"cpu":1.0,"mem":1.0,"duration":1e999}]}|}
      );
      ( "group missing field",
        {|{"op":"submit","priority":"batch","groups":[{"count":1,"cpu":1.0,"mem":1.0}]}|}
      );
      ( "group wrong type",
        {|{"op":"submit","priority":"batch","groups":["not-a-group"]}|} );
      ( "empty client id",
        {|{"op":"submit","priority":"batch","groups":[{"count":1,"cpu":1.0,"mem":1.0,"duration":1.0}],"client_id":""}|}
      );
      ("status without id", {|{"op":"status"}|});
      ("status negative id", {|{"op":"status","id":-1}|});
      ("status float id", {|{"op":"status","id":1.5}|});
    ]
  in
  List.iter
    (fun (name, line) ->
      match Protocol.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s must be rejected" name)
    cases

let test_protocol_render_roundtrip () =
  let spec =
    {
      Protocol.priority = Workload.Job.Service;
      groups =
        [
          { Workload.Job.tg_index = 0; count = 3; cpu = 1.5; mem = 0.5; duration = 12.0 };
          { Workload.Job.tg_index = 1; count = 1; cpu = 2.0; mem = 4.0; duration = 3.0 };
        ];
      inc = Protocol.Service "netcache";
      client_id = Some "cli-1";
    }
  in
  match Protocol.parse_request (Protocol.render_submit spec) with
  | Ok (Protocol.Submit js) ->
      Alcotest.(check bool) "round-trips" true (js = spec)
  | Ok _ -> Alcotest.fail "rendered submit parsed as the wrong op"
  | Error e -> Alcotest.failf "rendered submit rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Admission engine                                                    *)
(* ------------------------------------------------------------------ *)

(* Serving spec: zero horizon, so the built-in trace is empty and every
   job enters through admission. *)
let server_spec seed = { Experiment.default with seed; horizon = 0.0 }

let engine_config =
  { Admission.default_config with round_interval = 1.0; max_batch = 1000 }

let synth_spec ?client_id ?(inc = Protocol.No_inc) k =
  let rng = Prelude.Rng.create (1000 + k) in
  let n_groups = Prelude.Rng.int_in rng 1 3 in
  let groups =
    List.init n_groups (fun g ->
        {
          Workload.Job.tg_index = g;
          count = Prelude.Rng.int_in rng 1 6;
          cpu = Prelude.Rng.float_in rng 0.5 4.0;
          mem = Prelude.Rng.float_in rng 0.5 4.0;
          duration = Prelude.Rng.float_in rng 1.0 15.0;
        })
  in
  let priority =
    if Prelude.Rng.bernoulli rng 0.3 then Workload.Job.Service else Workload.Job.Batch
  in
  { Protocol.priority; groups; inc; client_id }

let admit_exn engine spec =
  match Admission.submit engine spec with
  | Admission.Admitted { admit_id; _ } -> admit_id
  | Admission.Rejected r -> Alcotest.failf "unexpected rejection: %s" r

let test_engine_submit_flush_status () =
  with_dir @@ fun dir ->
  let engine = Admission.start ~dir ~config:engine_config (server_spec 5) in
  let id0 = admit_exn engine (synth_spec 0) in
  let id1 = admit_exn engine (synth_spec ~inc:Protocol.Auto 1) in
  let id2 = admit_exn engine (synth_spec ~inc:(Protocol.Service "netcache") 2) in
  Alcotest.(check (list int)) "dense admission ids" [ 0; 1; 2 ] [ id0; id1; id2 ];
  Alcotest.(check bool) "barrier ok" true (Admission.ack_barrier engine);
  Alcotest.(check int) "three pending" 3 (Admission.pending engine);
  (match Admission.status engine id2 with
  | Some s -> Alcotest.(check string) "queued before flush" "queued" s.Admission.phase
  | None -> Alcotest.fail "status must know an admitted id");
  Alcotest.(check bool) "unknown id" true (Admission.status engine 99 = None);
  let n = Admission.flush engine in
  Alcotest.(check int) "whole batch injected" 3 n;
  (match Admission.status engine id0 with
  | Some s ->
      Alcotest.(check string) "done after drain" "done" s.Admission.phase;
      Alcotest.(check bool) "has placements" true (s.Admission.placements > 0)
  | None -> Alcotest.fail "status lost after flush");
  let st = Admission.stats engine in
  Alcotest.(check int) "stats admitted" 3 st.Admission.admitted;
  Alcotest.(check int) "stats injected" 3 st.Admission.injected;
  Alcotest.(check int) "stats batches" 1 st.Admission.batches;
  Alcotest.(check int) "stats pending" 0 st.Admission.pending_now;
  let (_ : Sim.Simulator.result) = Admission.finish engine in
  ()

let test_engine_idempotency_key () =
  with_dir @@ fun dir ->
  let engine = Admission.start ~dir ~config:engine_config (server_spec 6) in
  let spec = synth_spec ~client_id:"job-A" 0 in
  let id = admit_exn engine spec in
  let seq_after_first = Sim.Service.wal_seq (Admission.service engine) in
  (match Admission.submit engine spec with
  | Admission.Admitted { admit_id; duplicate } ->
      Alcotest.(check int) "same id returned" id admit_id;
      Alcotest.(check bool) "flagged duplicate" true duplicate
  | Admission.Rejected r -> Alcotest.failf "duplicate rejected: %s" r);
  Alcotest.(check int) "duplicate journaled nothing" seq_after_first
    (Sim.Service.wal_seq (Admission.service engine));
  Alcotest.(check int) "still one pending" 1 (Admission.pending engine);
  let (_ : Sim.Simulator.result) = Admission.finish engine in
  ()

let test_engine_backpressure_and_rejection () =
  with_dir @@ fun dir ->
  let config = { engine_config with Admission.max_pending = 2 } in
  let engine = Admission.start ~dir ~config (server_spec 7) in
  let (_ : int) = admit_exn engine (synth_spec 0) in
  let (_ : int) = admit_exn engine (synth_spec 1) in
  let seq = Sim.Service.wal_seq (Admission.service engine) in
  (match Admission.submit engine (synth_spec 2) with
  | Admission.Rejected "queue_full" -> ()
  | Admission.Rejected r -> Alcotest.failf "wrong rejection: %s" r
  | Admission.Admitted _ -> Alcotest.fail "backpressure must reject");
  (* an unknown INC service is rejected by validation, same contract *)
  (match
     Admission.submit engine
       { (synth_spec 3) with Protocol.inc = Protocol.Service "no-such-service" }
   with
  | Admission.Rejected _ -> ()
  | Admission.Admitted _ -> Alcotest.fail "unknown service must reject");
  Alcotest.(check int) "rejections journaled nothing" seq
    (Sim.Service.wal_seq (Admission.service engine));
  Alcotest.(check int) "pending unchanged" 2 (Admission.pending engine);
  let st = Admission.stats engine in
  Alcotest.(check int) "rejections counted" 2 st.Admission.rejected;
  (* rejected submissions never allocated an id: after the queue
     drains, the next admission is dense *)
  Alcotest.(check int) "flush clears the queue" 2 (Admission.flush engine);
  Alcotest.(check int) "ids stay dense" 2 (admit_exn engine (synth_spec 4));
  let (_ : Sim.Simulator.result) = Admission.finish engine in
  ()

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

(* A deterministic serving session: a script of submissions and
   flushes.  Submissions ack one by one (submit + barrier), exactly the
   server loop's behaviour with a single connection. *)
type op = Sub of int | Flush

let script =
  [ Sub 0; Sub 1; Flush; Sub 2; Sub 3; Sub 4; Flush; Flush; Sub 5; Sub 6; Flush ]

let spec_of_op k = synth_spec ~inc:(if k mod 2 = 0 then Protocol.Auto else Protocol.No_inc) k

(* Apply ops from index [from_]; returns the ids acked so far (in ack
   order) alongside the final result.  [acked] accumulates across a
   crash: the caller passes the pre-crash list when resuming. *)
let apply_ops engine ops ~from_ ~acked =
  let acked = ref acked in
  List.iteri
    (fun i op ->
      if i >= from_ then
        match op with
        | Sub k ->
            (match Admission.submit engine (spec_of_op k) with
            | Admission.Admitted { admit_id; duplicate = _ } ->
                assert (Admission.ack_barrier engine);
                if not (List.mem admit_id !acked) then acked := admit_id :: !acked
            | Admission.Rejected r -> Alcotest.failf "op %d rejected: %s" i r)
        | Flush -> ignore (Admission.flush engine : int))
    ops;
  let result = Admission.finish engine in
  (List.rev !acked, result)

let report_row spec (report : Sim.Metrics.report) =
  Sim.Csv_export.row ~faults:false ~resilience:false
    ~scheduler:spec.Experiment.scheduler ~mu:spec.Experiment.mu
    ~setup:spec.Experiment.setup ~seed:spec.Experiment.seed report

let wal_bytes dir = Journal.Source.read_file (Filename.concat dir "wal.bin")

(* Where to resume the script after recovery: replay the ops against
   the recovered counters — an op whose effect is already in the tables
   (admission present / batch journaled) completed before the crash. *)
let resume_index ops ~admitted ~batches =
  let a = ref 0 and b = ref 0 and pending = ref 0 and idx = ref (List.length ops) in
  (try
     List.iteri
       (fun i op ->
         match op with
         | Sub _ ->
             if !a >= admitted then begin
               idx := i;
               raise Exit
             end;
             incr a;
             incr pending
         | Flush ->
             if !pending > 0 then begin
               if !b >= batches then begin
                 idx := i;
                 raise Exit
               end;
               incr b;
               pending := 0
             end)
       ops
   with Exit -> ());
  !idx

let test_recovery_restores_pending_queue () =
  with_dir @@ fun dir ->
  let engine = Admission.start ~dir ~config:engine_config (server_spec 8) in
  let (_ : int) = admit_exn engine (synth_spec ~client_id:"a" 0) in
  let (_ : int) = admit_exn engine (synth_spec ~client_id:"b" 1) in
  assert (Admission.ack_barrier engine);
  (* Abandon the engine without finish — the crash model for "acked but
     never placed".  The sink's fd leaks for the test's duration, which
     is fine: recovery reopens the file by path. *)
  let r = Admission.recover ~dir ~config:engine_config () in
  Alcotest.(check int) "both admissions recovered" 2 r.Admission.pending_recovered;
  let engine = r.Admission.engine in
  Alcotest.(check int) "pending restored" 2 (Admission.pending engine);
  (* the idempotency map survives recovery too *)
  (match Admission.submit engine (synth_spec ~client_id:"a" 0) with
  | Admission.Admitted { admit_id; duplicate } ->
      Alcotest.(check int) "dedup across recovery" 0 admit_id;
      Alcotest.(check bool) "flagged duplicate" true duplicate
  | Admission.Rejected r -> Alcotest.failf "dedup rejected: %s" r);
  Alcotest.(check int) "flush places both" 2 (Admission.flush engine);
  let (_ : Sim.Simulator.result) = Admission.finish engine in
  ()

(* The headline property (WAL-before-ack): crash the server at ANY WAL
   record index between ack and placement, recover, resume the script —
   no acked admission is lost, and the final metrics row and the whole
   WAL are byte-identical to the uninterrupted session's. *)
let prop_kill_anywhere_loses_no_acked_job =
  QCheck.Test.make
    ~name:"server: crash at any WAL record loses no acked admission, recovers byte-identically"
    ~count:8
    QCheck.(pair (int_range 1 4) (float_range 0.0 1.0))
    (fun (seed, frac) ->
      let spec = server_spec seed in
      let dir_a = fresh_dir () and dir_b = fresh_dir () in
      Fun.protect
        ~finally:(fun () ->
          rm_rf dir_a;
          rm_rf dir_b)
        (fun () ->
          let engine_a = Admission.start ~dir:dir_a ~config:engine_config spec in
          let acked_a, result_a = apply_ops engine_a script ~from_:0 ~acked:[] in
          let bytes_a = wal_bytes dir_a in
          let l =
            match Journal.Source.load ~path:(Filename.concat dir_a "wal.bin") with
            | Ok l -> l
            | Error e ->
                QCheck.Test.fail_reportf "control WAL unreadable: %s"
                  (Journal.Error.to_string e)
          in
          let n = Array.length l.Journal.Source.records in
          if n < 3 then QCheck.Test.fail_reportf "degenerate session: %d records" n;
          let crash_at = 1 + int_of_float (frac *. float_of_int (n - 2)) in
          (* crashed run *)
          let acked_pre, crashed =
            Fun.protect ~finally:Chaos.disarm @@ fun () ->
            Chaos.arm ~crash_at ();
            let engine_b = Admission.start ~dir:dir_b ~config:engine_config spec in
            match apply_ops engine_b script ~from_:0 ~acked:[] with
            | _ -> (([] : int list), false)
            | exception Chaos.Crashed _ ->
                (* the admissions acked before the crash: their [Admit]
                   records survived the tear (WAL-before-ack made them
                   durable before any acknowledgment) *)
                let survivors = ref [] in
                (match Journal.Source.load ~path:(Filename.concat dir_b "wal.bin") with
                | Ok l ->
                    Array.iter
                      (fun body ->
                        match Sim.Wal.decode body with
                        | Sim.Wal.Admit { admit_id; _ } ->
                            survivors := admit_id :: !survivors
                        | _ -> ()
                        | exception Prelude.Codec.Error _ -> ())
                      l.Journal.Source.records
                | Error _ -> ());
                (List.rev !survivors, true)
          in
          if not crashed then
            (* the armed record index fell past this run's lifetime —
               the session completed; it must equal the control run *)
            String.equal bytes_a (wal_bytes dir_b)
          else begin
            let r =
              try Admission.recover ~dir:dir_b ~config:engine_config ()
              with Journal.Error.Journal_error e ->
                QCheck.Test.fail_reportf "seed %d crash@%d/%d: recovery failed: %s"
                  seed crash_at n (Journal.Error.to_string e)
            in
            let engine_b = r.Admission.engine in
            (* WAL-before-ack: every admission whose record survived the
               tear (= every admission whose ack could have been sent)
               is known to the recovered engine *)
            List.iter
              (fun id ->
                if Admission.status engine_b id = None then
                  QCheck.Test.fail_reportf
                    "seed %d crash@%d/%d: acked admission %d lost" seed crash_at n id)
              acked_pre;
            let st = Admission.stats engine_b in
            let from_ =
              resume_index script ~admitted:st.Admission.admitted
                ~batches:st.Admission.batches
            in
            let acked_b, result_b =
              apply_ops engine_b script ~from_ ~acked:acked_pre
            in
            if report_row spec result_a.Sim.Simulator.report
               <> report_row spec result_b.Sim.Simulator.report
            then
              QCheck.Test.fail_reportf "seed %d crash@%d/%d: reports differ" seed
                crash_at n;
            if not (String.equal bytes_a (wal_bytes dir_b)) then
              QCheck.Test.fail_reportf
                "seed %d crash@%d/%d (resumed at op %d, replayed %d): WALs differ"
                seed crash_at n from_ r.Admission.replayed;
            if List.sort compare acked_a <> List.sort compare acked_b then
              QCheck.Test.fail_reportf "seed %d crash@%d/%d: acked sets differ" seed
                crash_at n;
            true
          end))

(* ------------------------------------------------------------------ *)
(* End-to-end over a real socket                                       *)
(* ------------------------------------------------------------------ *)

let send_line fd line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec write off =
    if off < len then write (off + Unix.write_substring fd data off (len - off))
  in
  write 0

let recv_line fd buf =
  let chunk = Bytes.create 4096 in
  let rec read () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i ->
        let all = Buffer.contents buf in
        let line = String.sub all 0 i in
        Buffer.clear buf;
        Buffer.add_substring buf all (i + 1) (String.length all - i - 1);
        line
    | None ->
        let n = Unix.read fd chunk 0 4096 in
        if n = 0 then Alcotest.fail "server closed the connection";
        Buffer.add_subbytes buf chunk 0 n;
        read ()
  in
  read ()

let connect_with_retry path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.close fd;
        Unix.sleepf 0.05;
        go (tries - 1)
  in
  go 100

let test_socket_end_to_end () =
  with_dir @@ fun dir ->
  let sock = Filename.concat dir "server.sock" in
  let state = Filename.concat dir "journal" in
  match Unix.fork () with
  | 0 ->
      (* child: serve until the shutdown op; _exit skips the parent's
         at_exit machinery inherited across the fork *)
      Unix._exit
        (try
           let engine = Admission.start ~dir:state ~config:engine_config (server_spec 9) in
           let (_ : Sim.Simulator.result) =
             Server.Net.serve ~engine ~listen:(Server.Net.Unix_sock sock)
               ~tick_interval:10.0 ()
           in
           0
         with _ -> 1)
  | pid ->
      let check_ok resp name =
        match Json.parse resp with
        | Ok v when Json.member "ok" v = Some (Json.Bool true) -> v
        | Ok _ -> Alcotest.failf "%s: server said no: %s" name resp
        | Error e -> Alcotest.failf "%s: bad response %s: %s" name resp e
      in
      let finally () = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> () in
      Fun.protect ~finally (fun () ->
          let fd = connect_with_retry sock in
          let buf = Buffer.create 256 in
          send_line fd (Protocol.render_submit (synth_spec ~client_id:"e2e-0" 0));
          let v = check_ok (recv_line fd buf) "submit" in
          Alcotest.(check (option int)) "first id" (Some 0)
            (Option.bind (Json.member "id" v) Json.to_int);
          (* a malformed line gets a structured error, connection stays up *)
          send_line fd "{not json";
          (match Json.parse (recv_line fd buf) with
          | Ok v -> (
              match Json.member "ok" v with
              | Some (Json.Bool false) -> ()
              | _ -> Alcotest.fail "malformed line must yield ok=false")
          | Error e -> Alcotest.failf "error response unparsable: %s" e);
          send_line fd {|{"op":"drain"}|};
          let v = check_ok (recv_line fd buf) "drain" in
          Alcotest.(check (option int)) "drained one" (Some 1)
            (Option.bind (Json.member "injected" v) Json.to_int);
          send_line fd {|{"op":"status","id":0}|};
          let v = check_ok (recv_line fd buf) "status" in
          Alcotest.(check (option string)) "done" (Some "done")
            (Option.bind (Json.member "phase" v) Json.to_str);
          send_line fd {|{"op":"shutdown"}|};
          let (_ : Json.t) = check_ok (recv_line fd buf) "shutdown" in
          Unix.close fd;
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _, Unix.WEXITED c -> Alcotest.failf "server exited %d" c
          | _ -> Alcotest.fail "server killed by signal")

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "server"
    [
      ( "json",
        [
          quick "round-trip" test_json_roundtrip;
          quick "adversarial inputs fail closed" test_json_adversarial;
        ]
        @ qt [ prop_json_never_raises; prop_json_roundtrips_own_output ] );
      ( "protocol",
        [
          quick "valid ops parse" test_protocol_parses_valid_ops;
          quick "adversarial inputs fail closed" test_protocol_adversarial;
          quick "render/parse round-trip" test_protocol_render_roundtrip;
        ] );
      ( "admission",
        [
          quick "submit, flush, status, stats" test_engine_submit_flush_status;
          quick "idempotency key dedups" test_engine_idempotency_key;
          quick "backpressure and rejection" test_engine_backpressure_and_rejection;
        ] );
      ( "recovery",
        [ quick "acked-but-unplaced queue restored" test_recovery_restores_pending_queue ]
        @ qt [ prop_kill_anywhere_loses_no_acked_job ] );
      ("socket", [ quick "end-to-end exchange" test_socket_end_to_end ]);
    ]
