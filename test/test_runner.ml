(* Tests for lib/runner: the fork pool (ordering, isolation, timeout,
   retry, structured failures), the on-disk result cache (resume,
   corruption tolerance), and the acceptance properties of the sweep
   runner — parallel output byte-identical to sequential, and an
   interrupted sweep resuming from cached cells only. *)

module Runner = Runner
module Pool = Runner.Pool
module Cache = Runner.Cache
module Experiment = Harness.Experiment

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "hire_runner_test_%d_%d" (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Cache.ensure_dir dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let ok_exn = function
  | { Runner.result = Ok v; _ } -> v
  | { Runner.result = Error reason; _ } ->
      Alcotest.failf "unexpected failure: %s" (Pool.reason_to_string reason)

let ok_exn_pool (c : _ Pool.cell) =
  match c.result with
  | Ok v -> v
  | Error reason -> Alcotest.failf "unexpected failure: %s" (Pool.reason_to_string reason)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

(* Sleep jitter scrambles completion order; results must still come back
   in input order, identical for any --jobs. *)
let test_pool_order_deterministic () =
  let items = List.init 12 Fun.id in
  let f x =
    Unix.sleepf (0.002 *. float_of_int ((7 * x) mod 5));
    (x, x * x)
  in
  let run jobs =
    Pool.map ~jobs ~f items
    |> List.map (fun (c : _ Pool.cell) ->
           match c.result with Ok v -> v | Error _ -> Alcotest.fail "cell failed")
  in
  let sequential = run 1 and parallel = run 4 in
  Alcotest.(check (list (pair int int))) "input order" (List.map (fun x -> (x, x * x)) items)
    sequential;
  Alcotest.(check (list (pair int int))) "jobs=4 identical to jobs=1" sequential parallel

let test_pool_child_crash () =
  let f x = if x = 2 then Unix._exit 7 else x in
  let cells = Pool.map ~jobs:3 ~retries:2 ~f [ 0; 1; 2; 3; 4 ] in
  List.iteri
    (fun i (c : _ Pool.cell) ->
      if i = 2 then begin
        (match c.result with
        | Error (Pool.Crashed msg) ->
            Alcotest.(check bool) "mentions exit code" true (contains ~sub:"7" msg)
        | _ -> Alcotest.fail "expected Crashed");
        Alcotest.(check int) "retried up to the bound" 3 c.attempts
      end
      else Alcotest.(check int) "other cells unaffected" i (ok_exn_pool c))
    cells

let test_pool_child_exception () =
  let f x = if x = 1 then failwith "boom" else x in
  let cells = Pool.map ~retries:0 ~f [ 0; 1 ] in
  match (List.nth cells 1).Pool.result with
  | Error (Pool.Child_error msg) ->
      Alcotest.(check bool) "carries the message" true (contains ~sub:"boom" msg)
  | _ -> Alcotest.fail "expected Child_error"

let test_pool_timeout () =
  let t0 = Unix.gettimeofday () in
  let f x =
    if x = 1 then Unix.sleepf 30.0;
    x
  in
  let cells = Pool.map ~jobs:2 ~timeout:0.3 ~retries:1 ~f [ 0; 1; 2 ] in
  let hung = List.nth cells 1 in
  (match hung.Pool.result with
  | Error (Pool.Timed_out budget) ->
      Alcotest.(check bool) "budget reported" true (budget > 0.0 && budget < 1.0)
  | _ -> Alcotest.fail "expected Timed_out");
  Alcotest.(check int) "timed-out cell retried" 2 hung.Pool.attempts;
  Alcotest.(check int) "cell 0 fine" 0 (ok_exn_pool (List.nth cells 0));
  Alcotest.(check int) "cell 2 fine" 2 (ok_exn_pool (List.nth cells 2));
  Alcotest.(check bool) "killed, not waited out" true (Unix.gettimeofday () -. t0 < 10.0)

let test_pool_inline_mode () =
  let f x = if x = 1 then failwith "inline boom" else x * 2 in
  let cells = Pool.map ~isolate:false ~retries:1 ~f [ 0; 1; 2 ] in
  Alcotest.(check int) "inline result" 4 (ok_exn_pool (List.nth cells 2));
  match (List.nth cells 1).Pool.result with
  | Error (Pool.Child_error _) -> ()
  | _ -> Alcotest.fail "expected Child_error in inline mode"

(* Every timed-out worker is SIGKILLed; the parent must reap it and
   close its pipe end.  Kill ~100 workers and assert the process ends
   with the fd table back at baseline and no zombie children. *)
let test_pool_kill_storm_no_leaks () =
  let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
  let no_children () =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> false (* a live child is still out there *)
    | _ -> false (* an unreaped zombie was waiting for us *)
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
  in
  let baseline = count_fds () in
  let items = List.init 100 Fun.id in
  let f x =
    if x mod 2 = 0 then Unix.sleepf 30.0;
    x
  in
  let cells = Pool.map ~jobs:8 ~timeout:0.05 ~retries:0 ~f items in
  let killed =
    List.length
      (List.filter
         (fun (c : _ Pool.cell) ->
           match c.result with Error (Pool.Timed_out _) -> true | _ -> false)
         cells)
  in
  Alcotest.(check int) "half the workers were killed" 50 killed;
  Alcotest.(check int) "fd table back at baseline" baseline (count_fds ());
  Alcotest.(check bool) "no zombies left behind" true (no_children ())

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)
(* ------------------------------------------------------------------ *)

let test_cache_roundtrip () =
  with_dir (fun dir ->
      let c = Cache.create dir in
      Alcotest.(check bool) "miss before store" true (Cache.load c "k1" = None);
      Cache.store c "k1" (42, "x");
      Alcotest.(check (option (pair int string))) "hit" (Some (42, "x")) (Cache.load c "k1");
      Alcotest.(check bool) "mem" true (Cache.mem c "k1");
      Alcotest.(check (list string)) "keys" [ "k1" ] (Cache.keys c);
      Cache.remove c "k1";
      Alcotest.(check bool) "removed" true (Cache.load c "k1" = None))

let test_cache_corrupt_entry_is_miss () =
  with_dir (fun dir ->
      let c = Cache.create dir in
      Cache.store c "k" [ 1; 2; 3 ];
      (* Truncate the entry: a crash mid-write (pre-rename this cannot
         happen, but disk corruption can) must read as a miss. *)
      let file = Filename.concat dir "k.cell" in
      let oc = open_out file in
      output_string oc "garbage";
      close_out oc;
      Alcotest.(check bool) "corrupt entry misses" true (Cache.load c "k" = None))

let test_cache_version_mismatch_is_miss () =
  with_dir (fun dir ->
      let old = Cache.create ~version:"1" dir in
      Cache.store old "k" 1;
      let neu = Cache.create ~version:"2" dir in
      Alcotest.(check bool) "new version misses old entries" true (Cache.load neu "k" = None);
      Alcotest.(check (option int)) "old version still hits" (Some 1) (Cache.load old "k"))

(* ------------------------------------------------------------------ *)
(* Runner: resume semantics                                           *)
(* ------------------------------------------------------------------ *)

let string_key = string_of_int

let test_runner_resume_counts () =
  with_dir (fun dir ->
      let cache = Cache.create dir in
      let items = [ 1; 2; 3; 4; 5; 6 ] in
      let f x = x * 10 in
      let outcomes, stats = Runner.run ~cache ~key:string_key ~f items in
      Alcotest.(check (list int)) "values" [ 10; 20; 30; 40; 50; 60 ]
        (List.map ok_exn outcomes);
      Alcotest.(check int) "first run executes all" 6 stats.Runner.executed;
      Alcotest.(check int) "first run caches none" 0 stats.Runner.cached;
      (* Re-run: every cell must come from the cache, none executed. *)
      let outcomes2, stats2 = Runner.run ~cache ~key:string_key ~f items in
      Alcotest.(check (list int)) "cached values identical" (List.map ok_exn outcomes)
        (List.map ok_exn outcomes2);
      Alcotest.(check int) "resume executes none" 0 stats2.Runner.executed;
      Alcotest.(check int) "resume serves all from cache" 6 stats2.Runner.cached;
      Alcotest.(check bool) "outcomes flagged from_cache" true
        (List.for_all (fun o -> o.Runner.from_cache) outcomes2))

(* A sweep killed halfway leaves a partial cache; the restart must
   execute exactly the missing cells. *)
let test_runner_resume_after_interrupt () =
  with_dir (fun dir ->
      let cache = Cache.create dir in
      let all = [ 1; 2; 3; 4; 5; 6 ] in
      let f x = x * 10 in
      let _, stats1 = Runner.run ~cache ~key:string_key ~f [ 1; 2; 3 ] in
      Alcotest.(check int) "half sweep executed" 3 stats1.Runner.executed;
      let outcomes, stats = Runner.run ~cache ~key:string_key ~f all in
      Alcotest.(check int) "restart executes only missing cells" 3 stats.Runner.executed;
      Alcotest.(check int) "restart reuses finished cells" 3 stats.Runner.cached;
      Alcotest.(check (list int)) "complete results" [ 10; 20; 30; 40; 50; 60 ]
        (List.map ok_exn outcomes))

let test_runner_no_resume_recomputes () =
  with_dir (fun dir ->
      let cache = Cache.create dir in
      let f x = x + 1 in
      let _ = Runner.run ~cache ~key:string_key ~f [ 1; 2 ] in
      let _, stats = Runner.run ~cache ~resume:false ~key:string_key ~f [ 1; 2 ] in
      Alcotest.(check int) "resume:false recomputes" 2 stats.Runner.executed)

let test_runner_failures_not_cached () =
  with_dir (fun dir ->
      let cache = Cache.create dir in
      let f x = if x = 2 then failwith "flaky" else x in
      let outcomes, stats = Runner.run ~cache ~retries:0 ~key:string_key ~f [ 1; 2; 3 ] in
      Alcotest.(check int) "one failure" 1 stats.Runner.failed;
      (match (List.nth outcomes 1).Runner.result with
      | Error (Pool.Child_error _) -> ()
      | _ -> Alcotest.fail "expected structured failure");
      (* The failure must not poison the cache: a resumed run reuses the
         two successes and re-executes only the failed cell. *)
      let f2 x = x in
      let outcomes2, stats2 = Runner.run ~cache ~retries:0 ~key:string_key ~f:f2 [ 1; 2; 3 ] in
      Alcotest.(check int) "only failed cell re-executes" 1 stats2.Runner.executed;
      Alcotest.(check int) "successes came from cache" 2 stats2.Runner.cached;
      Alcotest.(check (list int)) "now complete" [ 1; 2; 3 ] (List.map ok_exn outcomes2))

let test_runner_retry_stats () =
  with_dir (fun dir ->
      (* Crash on the first attempt only, keyed by an on-disk marker so
         the retry (a fresh process) takes the success path. *)
      let marker = Filename.concat dir "attempted" in
      let f x =
        if x = 1 && not (Sys.file_exists marker) then begin
          close_out (open_out marker);
          Unix._exit 9
        end;
        x
      in
      let outcomes, stats = Runner.run ~retries:2 ~key:string_key ~f [ 0; 1 ] in
      Alcotest.(check (list int)) "recovered after retry" [ 0; 1 ] (List.map ok_exn outcomes);
      Alcotest.(check int) "retry counted" 1 stats.Runner.retries;
      Alcotest.(check int) "no terminal failure" 0 stats.Runner.failed)

(* ------------------------------------------------------------------ *)
(* Acceptance: experiment sweep through the runner                    *)
(* ------------------------------------------------------------------ *)

let small_specs =
  Experiment.sweep
    { Experiment.default with k = 4; horizon = 40.0; target_utilization = 2.0 }
    ~schedulers:[ "yarn-concurrent"; "sparrow-concurrent" ]
    ~mus:[ 0.25 ] ~seeds:[ 1; 2 ]

let csv_rows specs outcomes =
  List.map2
    (fun (s : Experiment.spec) o ->
      Sim.Csv_export.row ~scheduler:s.scheduler ~mu:s.mu ~setup:s.setup ~seed:s.seed
        (ok_exn o))
    specs outcomes

(* The acceptance property: a --jobs 4 sweep emits byte-identical result
   rows to the sequential run.  (Deterministic simulation metrics only;
   measured wall-clock columns are excluded by using non-flow schedulers,
   whose solver histogram is empty.) *)
let test_sweep_parallel_byte_identical () =
  let run jobs =
    let outcomes, _ = Runner.run ~jobs ~key:Experiment.cell_key ~f:Experiment.run small_specs in
    csv_rows small_specs outcomes
  in
  let sequential = run 1 and parallel = run 4 in
  Alcotest.(check (list string)) "byte-identical CSV rows" sequential parallel

(* The acceptance property: a killed sweep restarted with resume
   completes using cached cells only. *)
let test_sweep_resume_cached_only () =
  with_dir (fun dir ->
      let cache = Cache.create dir in
      let half = List.filteri (fun i _ -> i < 2) small_specs in
      let _, stats0 =
        Runner.run ~jobs:2 ~cache ~key:Experiment.cell_key ~f:Experiment.run half
      in
      Alcotest.(check int) "interrupted sweep ran 2 cells" 2 stats0.Runner.executed;
      let outcomes, stats =
        Runner.run ~jobs:2 ~cache ~key:Experiment.cell_key ~f:Experiment.run small_specs
      in
      Alcotest.(check int) "restart executed only the missing cells" 2 stats.Runner.executed;
      Alcotest.(check int) "finished cells came from the cache" 2 stats.Runner.cached;
      Alcotest.(check int) "no failures" 0 stats.Runner.failed;
      (* Cached and fresh cells must be indistinguishable in content. *)
      let fresh, _ =
        Runner.run ~jobs:2 ~key:Experiment.cell_key ~f:Experiment.run small_specs
      in
      Alcotest.(check (list string)) "cached rows byte-identical to fresh rows"
        (csv_rows small_specs fresh) (csv_rows small_specs outcomes);
      (* And a second resumed run is now fully cached. *)
      let _, stats2 =
        Runner.run ~jobs:2 ~cache ~key:Experiment.cell_key ~f:Experiment.run small_specs
      in
      Alcotest.(check int) "fully resumed run executes nothing" 0 stats2.Runner.executed;
      Alcotest.(check int) "fully resumed run is all cache" (List.length small_specs)
        stats2.Runner.cached)

let () =
  Alcotest.run "runner"
    [
      ( "pool",
        [
          Alcotest.test_case "deterministic input-order results" `Quick
            test_pool_order_deterministic;
          Alcotest.test_case "child crash -> bounded retry -> structured failure" `Quick
            test_pool_child_crash;
          Alcotest.test_case "child exception -> Child_error" `Quick test_pool_child_exception;
          Alcotest.test_case "timeout kills and retries" `Quick test_pool_timeout;
          Alcotest.test_case "inline (no-fork) mode" `Quick test_pool_inline_mode;
          Alcotest.test_case "kill storm leaks no fds or zombies" `Quick
            test_pool_kill_storm_no_leaks;
        ] );
      ( "cache",
        [
          Alcotest.test_case "store/load/remove roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "corrupt entry reads as miss" `Quick
            test_cache_corrupt_entry_is_miss;
          Alcotest.test_case "version mismatch reads as miss" `Quick
            test_cache_version_mismatch_is_miss;
        ] );
      ( "resume",
        [
          Alcotest.test_case "re-run serves every cell from cache" `Quick
            test_runner_resume_counts;
          Alcotest.test_case "interrupted run resumes missing cells only" `Quick
            test_runner_resume_after_interrupt;
          Alcotest.test_case "resume:false recomputes" `Quick test_runner_no_resume_recomputes;
          Alcotest.test_case "failures are not cached" `Quick test_runner_failures_not_cached;
          Alcotest.test_case "retry recovers and is counted" `Quick test_runner_retry_stats;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "parallel sweep byte-identical to sequential" `Slow
            test_sweep_parallel_byte_identical;
          Alcotest.test_case "killed sweep resumes from cached cells only" `Slow
            test_sweep_resume_cached_only;
        ] );
    ]
