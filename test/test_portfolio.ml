(* Tests for the solver portfolio race (docs/PARALLELISM.md): the
   deterministic-priority race on OCaml 5 domains, budgeted cancellation
   of losers, end-to-end equivalence with the serial fallback chain, and
   the domain-pool evaluation mode of the runner.

   Chaos state is pinned explicitly ([Chaos.activate ~seed] under
   [Fun.protect]) so the suite behaves identically whether or not
   HIRE_CHAOS is set.  Every race is forced eager ([~eager:true]) so the
   domain fan-out is exercised even on single-core CI hosts. *)

module Graph = Flow.Graph
module Mcmf = Flow.Mcmf
module Budget = Flow.Budget
module Chaos = Flow.Chaos
module Portfolio = Flow.Portfolio
module Poly_req = Hire.Poly_req
module Comp_req = Hire.Comp_req
module Comp_store = Hire.Comp_store
module Transformer = Hire.Transformer
module Pool = Runner.Pool
module Vec = Prelude.Vec
module Rng = Prelude.Rng

let store = Comp_store.default ()

let with_chaos seed f =
  Chaos.activate ~seed;
  Fun.protect ~finally:Chaos.deactivate f

(* n unit paths s -> m_i -> t with distinct costs (same fixture as
   test_resilience): SSP needs exactly n augmentations. *)
let fan_graph n =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  for i = 1 to n do
    let m = Graph.add_node g in
    ignore (Graph.add_arc g ~src:s ~dst:m ~cap:1 ~cost:i);
    ignore (Graph.add_arc g ~src:m ~dst:t ~cap:1 ~cost:1)
  done;
  Graph.set_supply g s n;
  Graph.set_supply g t (-n);
  g

let empty_degraded g name =
  {
    Mcmf.shipped = 0;
    unshipped = Graph.total_positive_supply g;
    total_cost = 0;
    augmentations = 0;
    elapsed_s = 0.0;
    degraded = true;
    profile = Obs.Solver_profile.zero ~solver:name;
  }

let ssp_job =
  { Portfolio.name = "ssp"; run = (fun ~ctl g -> Mcmf.solve ~ctl g) }

(* Burns budget steps until the budget (or a cancellation) fires, then
   reports a degraded empty solve — a deliberately-stalled backend. *)
let stall_job =
  {
    Portfolio.name = "stall";
    run =
      (fun ~ctl g ->
        while Budget.check ctl = None do
          Budget.spend ctl 1
        done;
        empty_degraded g "stall");
  }

let accept_healthy _i (e : Portfolio.entry) =
  match e.Portfolio.result with
  | Some r -> (not r.Mcmf.degraded) && r.Mcmf.shipped > 0
  | None -> false

(* ------------------------------------------------------------------ *)
(* The race itself                                                     *)
(* ------------------------------------------------------------------ *)

let test_stalled_backend_loses () =
  Chaos.deactivate ();
  let source = fan_graph 6 in
  (* 50 steps: plenty for SSP's 6 augmentations, a hard stop for the
     staller — it must lose within its own budget, not hang the race. *)
  let o =
    Portfolio.race ~eager:true
      ~budget:(Budget.make ~max_steps:50 ())
      ~source ~decide:accept_healthy [ stall_job; ssp_job ]
  in
  Alcotest.(check (option int)) "real solver wins" (Some 1) o.Portfolio.winner;
  let stalled = o.Portfolio.entries.(0) in
  Alcotest.(check bool) "staller ran" true stalled.Portfolio.ran;
  (match stalled.Portfolio.result with
  | Some r -> Alcotest.(check bool) "staller degraded" true r.Mcmf.degraded
  | None -> Alcotest.fail "staller produced no result");
  (match Option.map Budget.check stalled.Portfolio.ctl with
  | Some (Some (Budget.Steps _)) | Some (Some Budget.Cancelled) -> ()
  | _ -> Alcotest.fail "staller's budget should report Steps or Cancelled");
  (* The winner's solve matches a plain serial solve. *)
  let serial = Mcmf.solve (fan_graph 6) in
  match o.Portfolio.entries.(1).Portfolio.result with
  | Some r ->
      Alcotest.(check int) "same shipped" serial.Mcmf.shipped r.Mcmf.shipped;
      Alcotest.(check int) "same cost" serial.Mcmf.total_cost r.Mcmf.total_cost
  | None -> Alcotest.fail "winner produced no result"

let test_loser_is_cancelled () =
  Chaos.deactivate ();
  let source = fan_graph 4 in
  (* Unlimited budget: the spinner can only be stopped by the
     cancellation flag the coordinator sets once the winner is in. *)
  let o =
    Portfolio.race ~eager:true ~budget:Budget.unlimited ~source
      ~decide:accept_healthy [ ssp_job; stall_job ]
  in
  Alcotest.(check (option int)) "priority backend wins" (Some 0) o.Portfolio.winner;
  let loser = o.Portfolio.entries.(1) in
  Alcotest.(check bool) "loser ran" true loser.Portfolio.ran;
  Alcotest.(check bool) "loser was cancelled" true loser.Portfolio.cancel_requested;
  match Option.map Budget.check loser.Portfolio.ctl with
  | Some (Some Budget.Cancelled) -> ()
  | _ -> Alcotest.fail "loser's budget should report Cancelled"

let test_lazy_mode_skips_after_winner () =
  Chaos.deactivate ();
  let source = fan_graph 4 in
  let o =
    Portfolio.race ~eager:false ~budget:Budget.unlimited ~source
      ~decide:accept_healthy [ ssp_job; stall_job ]
  in
  Alcotest.(check (option int)) "first job wins" (Some 0) o.Portfolio.winner;
  Alcotest.(check bool) "lazy" false o.Portfolio.eager;
  let skipped = o.Portfolio.entries.(1) in
  Alcotest.(check bool) "second job never ran" false skipped.Portfolio.ran;
  Alcotest.(check bool) "and was not cancelled" false skipped.Portfolio.cancel_requested

let test_decide_order_is_priority_order () =
  Chaos.deactivate ();
  let source = fan_graph 3 in
  let seen = ref [] in
  let reject_all i (e : Portfolio.entry) =
    seen := (i, e.Portfolio.name) :: !seen;
    false
  in
  (* The step budget lets the staller stop on its own: with every entry
     rejected the coordinator joins all jobs, so nothing may depend on a
     winner-triggered cancellation here. *)
  let o =
    Portfolio.race ~eager:true
      ~budget:(Budget.make ~max_steps:10 ())
      ~source ~decide:reject_all [ ssp_job; stall_job; ssp_job ]
  in
  ignore o;
  Alcotest.(check (list (pair int string)))
    "consulted in priority order"
    [ (0, "ssp"); (1, "stall"); (2, "ssp") ]
    (List.rev !seen)

(* A rejected-everywhere race reports no winner and leaves the source
   graph untouched (solves happen on private copies). *)
let test_no_winner_and_source_untouched () =
  Chaos.deactivate ();
  let source = fan_graph 5 in
  let o =
    Portfolio.race ~eager:true
      ~budget:(Budget.make ~max_steps:2 ())
      ~source
      ~decide:(fun _ _ -> false)
      [ ssp_job; ssp_job ]
  in
  Alcotest.(check (option int)) "no winner" None o.Portfolio.winner;
  for a = 0 to (2 * Graph.arc_count source) - 1 do
    if Graph.is_forward a then Alcotest.(check int) "source arc flow" 0 (Graph.flow source a)
  done

(* ------------------------------------------------------------------ *)
(* End-to-end equivalence with the serial chain                        *)
(* ------------------------------------------------------------------ *)

let server_only_req ?(cpu = 2.0) n =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        {
          Comp_req.comp_id = "c0";
          template = "server";
          base = { Comp_req.instances = n; cpu; mem = 4.0; duration = 30.0 };
          inc_alternatives = [];
        };
      ];
    connections = [];
  }

let inc_req ?(service = "netchain") ?(n = 10) () =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        {
          Comp_req.comp_id = "c0";
          template = Option.get (Comp_store.template_of_service store service);
          base = { Comp_req.instances = n; cpu = 2.0; mem = 4.0; duration = 30.0 };
          inc_alternatives = [ service ];
        };
      ];
    connections = [];
  }

let make_cluster seed =
  Sim.Cluster.create ~inc_capable_fraction:1.0 ~k:4 ~setup:Sim.Cluster.Homogeneous
    ~services:(Array.to_list (Comp_store.service_names store))
    (Rng.create (seed land 0xFFFF))

let arrivals_fixture rng ids =
  List.init 6 (fun i ->
      let req = if i mod 2 = 0 then inc_req () else server_only_req 3 in
      ( float_of_int i,
        Transformer.transform store ids rng ~job_id:i ~arrival:(float_of_int i) req ))

(* One full simulation with every round's externally visible decisions
   logged: placements (tg, machine, sharing), cancellations, and the
   per-round resilience record. *)
let run_logged ~portfolio ~resilience seed =
  let rng = Rng.create seed in
  let cluster = make_cluster seed in
  let ids = Transformer.Id_gen.create () in
  let arrivals = arrivals_fixture rng ids in
  let sched =
    Schedulers.Registry.create ~resilience ~portfolio ~portfolio_eager:true "hire"
      ~seed:17 cluster
  in
  let log = ref [] in
  let logged =
    {
      sched with
      Sim.Scheduler_intf.round =
        (fun ~time ->
          let r = sched.Sim.Scheduler_intf.round ~time in
          let ps =
            List.map
              (fun (p : Sim.Scheduler_intf.placement) ->
                (p.tg.Poly_req.tg_id, p.machine, p.shared))
              r.Sim.Scheduler_intf.placements
          in
          let cs = List.map (fun tg -> tg.Poly_req.tg_id) r.Sim.Scheduler_intf.cancelled in
          log := (ps, cs, r.Sim.Scheduler_intf.resilience) :: !log;
          r);
    }
  in
  let result = Sim.Simulator.run cluster logged arrivals in
  (List.rev !log, cluster, result.Sim.Simulator.report)

let conserved cluster =
  let topo = Sim.Cluster.topo cluster in
  Vec.is_zero (Sim.Cluster.switch_used_total cluster)
  && Array.for_all
       (fun s ->
         Vec.equal (Sim.Cluster.server_available cluster s)
           (Sim.Cluster.server_capacity cluster))
       (Topology.Fat_tree.servers topo)

let deterministic_fields (r : Sim.Metrics.report) =
  ( ( r.Sim.Metrics.jobs_total,
      r.Sim.Metrics.tgs_total,
      r.Sim.Metrics.tgs_satisfied,
      r.Sim.Metrics.tgs_cancelled,
      r.Sim.Metrics.rounds ),
    ( r.Sim.Metrics.degraded_rounds,
      r.Sim.Metrics.fallback_rounds,
      r.Sim.Metrics.fallback_depth_max,
      r.Sim.Metrics.guard_trips,
      r.Sim.Metrics.salvaged_tasks ) )

let check_equivalent ~name seed budget =
  let resilience = Hire.Hire_scheduler.resilience ?budget ~guard_every:3 () in
  (* Fresh chaos activation per arm: both replay the same per-stream
     draw sequences, which is exactly what the portfolio's decide-side
     replay promises (docs/PARALLELISM.md). *)
  let serial_log, serial_cluster, serial_r =
    with_chaos seed (fun () -> run_logged ~portfolio:false ~resilience seed)
  in
  let raced_log, raced_cluster, raced_r =
    with_chaos seed (fun () -> run_logged ~portfolio:true ~resilience seed)
  in
  let ok =
    serial_log = raced_log
    && deterministic_fields serial_r = deterministic_fields raced_r
    && conserved serial_cluster && conserved raced_cluster
  in
  if not ok then
    Alcotest.failf "%s: portfolio diverged from serial (seed %d): logs %b fields %b"
      name seed (serial_log = raced_log)
      (deterministic_fields serial_r = deterministic_fields raced_r);
  serial_r

let test_portfolio_matches_serial_chaos () =
  let r = check_equivalent ~name:"chaos+steps" 1234 (Some (Budget.make ~max_steps:5 ())) in
  (* The fixture must actually exercise the degraded paths being raced. *)
  Alcotest.(check bool) "degraded rounds observed" true (r.Sim.Metrics.degraded_rounds > 0)

let test_portfolio_matches_serial_unbudgeted () =
  ignore (check_equivalent ~name:"chaos-only" 77 None)

(* Randomized: for any seed and any step budget, a portfolio race under
   chaos — whatever the winner or cancellation timing — produces the
   exact placement log, ledgers, and report of the serial SSP-first
   chain.  Wall-clock budgets are excluded by design: they are
   nondeterministic in both modes. *)
let prop_portfolio_equiv_serial =
  QCheck.Test.make ~name:"portfolio race == serial chain (placements, ledgers, reports)"
    ~count:6
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 2))
    (fun (seed, budget_kind) ->
      let budget =
        match budget_kind with
        | 0 -> Some (Budget.make ~max_steps:5 ())
        | 1 -> Some (Budget.make ~max_steps:50 ())
        | _ -> None
      in
      ignore (check_equivalent ~name:"qcheck" seed budget);
      true)

(* ------------------------------------------------------------------ *)
(* Domain-pool evaluation mode                                         *)
(* ------------------------------------------------------------------ *)

let results_of cells =
  List.map
    (fun (c : _ Pool.cell) ->
      match c.Pool.result with
      | Ok v -> v
      | Error r -> Alcotest.failf "cell failed: %s" (Pool.reason_to_string r))
    cells

let test_domains_input_order () =
  let items = List.init 20 Fun.id in
  let cells = Pool.map ~jobs:4 ~retries:0 ~mode:Pool.Domains ~f:(fun x -> x * x) items in
  Alcotest.(check (list int)) "squares in input order"
    (List.map (fun x -> x * x) items)
    (results_of cells)

let test_domains_more_jobs_than_items () =
  let cells = Pool.map ~jobs:8 ~retries:0 ~mode:Pool.Domains ~f:succ [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "all evaluated" [ 2; 3; 4 ] (results_of cells)

let test_domains_retries_flaky_cell () =
  let attempts = Atomic.make 0 in
  let f x =
    if x = 3 && Atomic.fetch_and_add attempts 1 = 0 then failwith "flaky" else x
  in
  let cells = Pool.map ~jobs:2 ~retries:1 ~mode:Pool.Domains ~f [ 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "recovered" [ 1; 2; 3; 4 ] (results_of cells);
  let c3 = List.nth cells 2 in
  Alcotest.(check int) "flaky cell took two attempts" 2 c3.Pool.attempts

let test_domains_error_cell_is_contained () =
  let f x = if x = 2 then failwith "boom" else x * 10 in
  let cells = Pool.map ~jobs:2 ~retries:1 ~mode:Pool.Domains ~f [ 1; 2; 3 ] in
  (match (List.nth cells 1).Pool.result with
  | Error (Pool.Child_error msg) ->
      Alcotest.(check bool) "carries the exception" true
        (String.length msg > 0 && (List.nth cells 1).Pool.attempts = 2)
  | _ -> Alcotest.fail "expected Child_error for the raising cell");
  (match (List.nth cells 0).Pool.result with
  | Ok v -> Alcotest.(check int) "neighbours unaffected" 10 v
  | Error _ -> Alcotest.fail "healthy cell failed");
  match (List.nth cells 2).Pool.result with
  | Ok v -> Alcotest.(check int) "neighbours unaffected" 30 v
  | Error _ -> Alcotest.fail "healthy cell failed"

let test_runner_domains_matches_inline () =
  let items = List.init 12 Fun.id in
  let key = string_of_int in
  let f x = (x, x * x) in
  let run mode =
    let outcomes, stats = Runner.run ~jobs:3 ~retries:0 ~mode ~key ~f items in
    ( List.map
        (fun (o : _ Runner.outcome) ->
          match o.Runner.result with Ok v -> v | Error _ -> Alcotest.fail "cell failed")
        outcomes,
      stats.Runner.executed )
  in
  let dv, dn = run Pool.Domains and iv, inl = run Pool.Inline in
  Alcotest.(check bool) "identical values" true (dv = iv);
  Alcotest.(check int) "all executed (domains)" 12 dn;
  Alcotest.(check int) "all executed (inline)" 12 inl

(* ------------------------------------------------------------------ *)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "portfolio"
    [
      ( "race",
        [
          quick "stalled backend loses within its budget" test_stalled_backend_loses;
          quick "loser is cancelled once a winner is in" test_loser_is_cancelled;
          quick "lazy mode skips jobs after the winner" test_lazy_mode_skips_after_winner;
          quick "decide consulted in priority order" test_decide_order_is_priority_order;
          quick "no winner, source graph untouched" test_no_winner_and_source_untouched;
        ] );
      ( "equivalence",
        [
          quick "chaos + step budget matches serial" test_portfolio_matches_serial_chaos;
          quick "chaos, no budget matches serial" test_portfolio_matches_serial_unbudgeted;
        ]
        @ qt [ prop_portfolio_equiv_serial ] );
      ( "pool-domains",
        [
          quick "results in input order" test_domains_input_order;
          quick "more jobs than items" test_domains_more_jobs_than_items;
          quick "flaky cell retried in-worker" test_domains_retries_flaky_cell;
          quick "raising cell contained" test_domains_error_cell_is_contained;
          quick "runner domain mode matches inline" test_runner_domains_matches_inline;
        ] );
    ]
