.PHONY: all build test check lint-compare bench-solver bench-portfolio bench-journal bench-server bench-reopt doc clean

all: build

build:
	dune build

test:
	dune runtest

# Polymorphic compare in sorts and polymorphic Hashtbl.hash are banned
# from the solver hot path (lib/flow, lib/hire, and the priority-queue
# modules of lib/prelude they pull in): they walk values structurally
# and allocate.  Use Int.compare / Float.compare / String.compare and
# Prelude.Int_tbl instead (docs/PERFORMANCE.md).
lint-compare:
	@! grep -rnE '(List\.sort|List\.sort_uniq|Array\.sort)[ (]+compare' lib/flow lib/hire lib/prelude \
		|| { echo "lint-compare: FAIL (polymorphic compare in a sort above)"; exit 1; }
	@! { grep -rn 'Hashtbl\.hash' lib/flow lib/hire lib/prelude | grep -v '\[Hashtbl\.hash\]'; } \
		|| { echo "lint-compare: FAIL (polymorphic Hashtbl.hash above)"; exit 1; }
	@echo "lint-compare: OK"

# Full micro + end-to-end solver benchmark; writes BENCH_5.json (see
# docs/PERFORMANCE.md for how to read it).  Exits non-zero if the
# incremental path ever diverges from a from-scratch rebuild.
bench-solver:
	dune exec bench/bench_solver.exe -- --out BENCH_5.json
	@grep -q '"identical": true' BENCH_5.json
	@echo "bench-solver: OK (BENCH_5.json)"

# Solver-portfolio race benchmark; writes BENCH_6.json (see
# docs/PARALLELISM.md for how to read it).  Exits non-zero if the raced
# winner ever diverges from a serial solve of the same backend.
bench-portfolio:
	dune exec bench/bench_portfolio.exe -- --out BENCH_6.json
	@grep -q '"identical": true' BENCH_6.json
	@echo "bench-portfolio: OK (BENCH_6.json)"

# Journaling-overhead and crash-recovery benchmark; writes BENCH_7.json
# (see docs/JOURNAL.md for how to read it).  Exits non-zero if any
# journaled, crashed, or recovered run diverges from the plain run.
bench-journal:
	dune exec bench/bench_journal.exe -- --out BENCH_7.json
	@grep -q '"identical": true' BENCH_7.json
	@echo "bench-journal: OK (BENCH_7.json)"

# Admission-server load benchmark; writes BENCH_8.json (see
# docs/SERVER.md for how to read it).  Exits non-zero if any
# acknowledged admission is lost across the kill -9 (WAL-before-ack).
bench-server:
	dune exec bench/bench_server.exe -- --out BENCH_8.json
	@grep -q '"all_acked_recovered":true' BENCH_8.json
	@echo "bench-server: OK (BENCH_8.json)"

# Re-optimizing solve-path benchmark; writes BENCH_9.json (see
# docs/PERFORMANCE.md, "Re-optimizing solves", for how to read it).
# Exits non-zero if the Fast solver ever diverges from the Classic
# baseline, if the re-optimizing pipeline diverges from its escape
# hatches, or if the speedup gates (2x solve phase, 5x per-round
# pipeline vs the pre-PR-5 baseline of BENCH_5.json) fail.
bench-reopt:
	dune exec bench/bench_reopt.exe -- --min-speedup 2 --min-e2e-speedup 5 --out BENCH_9.json
	@grep -q '"identical": true' BENCH_9.json
	@echo "bench-reopt: OK (BENCH_9.json)"

# Tier-1 gate plus smoke-checks that the observability and fault flags
# are wired into the CLI (docs/OBSERVABILITY.md, docs/FAULTS.md), that a
# small deterministic fault-injected run completes, that bad flags fail
# fast with a one-line error, that the parallel sweep runner
# (docs/RUNNER.md) executes and resumes a tiny sweep, and that a run
# with an exhausted solver budget degrades along the fallback chain
# instead of wedging (docs/RESILIENCE.md), that a budgeted portfolio
# run races and records per-backend wins (docs/PARALLELISM.md), that a
# short solver benchmark still certifies the incremental network path
# bit-identical (docs/PERFORMANCE.md), and that a journaled run crashed
# mid-flight with a corrupted WAL tail recovers — tear truncated
# (journal.torn_tail), replayed, and finished byte-identical to an
# uninterrupted run (docs/JOURNAL.md), and that the admission server
# (docs/SERVER.md) serves a submit/drain/shutdown session over its Unix
# socket and fails fast with a one-line error on an unusable state dir,
# and that a serve session under an injected fsync failure
# (docs/FAILPOINTS.md) logs the armed schedule, enters degraded mode,
# heals back to healthy, and still completes the client session.
check: lint-compare
	dune build
	dune runtest
	dune exec bin/hire_sim.exe -- --help=plain | grep -q -- '--trace'
	dune exec bin/hire_sim.exe -- --help=plain | grep -q -- '--obs-summary'
	dune exec bin/hire_sim.exe -- --help=plain | grep -q -- '--faults'
	dune exec bin/hire_sim.exe -- --scheduler yarn-concurrent --mu 0.25 -k 4 \
		--horizon 30 --seeds 1 --faults --mtbf 40 --mttr 5 > /dev/null
	@if dune exec bin/hire_sim.exe -- -s bogus 2>/tmp/hire_sim_err.txt; then \
		echo "check: FAIL (bad scheduler should exit non-zero)"; exit 1; fi
	@grep -q 'unknown scheduler' /tmp/hire_sim_err.txt || \
		{ echo "check: FAIL (expected one-line unknown-scheduler error)"; exit 1; }
	@test "$$(wc -l < /tmp/hire_sim_err.txt)" -eq 1 || \
		{ echo "check: FAIL (error should be one line, got:)"; cat /tmp/hire_sim_err.txt; exit 1; }
	rm -rf /tmp/hire_check_sweep
	dune exec bin/hire_sweep.exe -- --jobs 2 -k 4 --horizon 40 --util 2.0 \
		--schedulers yarn-concurrent --mus 0.5 --seeds 1,2 \
		--cache-dir /tmp/hire_check_sweep/cache \
		--out /tmp/hire_check_sweep/sweep.csv --quiet
	dune exec bin/hire_sweep.exe -- --jobs 2 -k 4 --horizon 40 --util 2.0 \
		--schedulers yarn-concurrent --mus 0.5 --seeds 1,2 \
		--cache-dir /tmp/hire_check_sweep/cache \
		--out /tmp/hire_check_sweep/sweep.csv --quiet --resume \
		| grep -q '2 cached'
	rm -rf /tmp/hire_check_sweep
	dune exec bin/hire_sim.exe -- -s hire -k 4 --horizon 40 --util 2.0 --seeds 1 \
		--solver-budget 0 --guard 1 \
		| grep -E 'degraded-rounds=[1-9]' > /dev/null
	dune exec bin/hire_sim.exe -- -s hire -k 4 --horizon 40 --util 2.0 --seeds 1 \
		--portfolio --solver-steps 4000 --obs-summary \
		| grep -E 'flow\.portfolio\.win\.[a-z-]+ +[1-9]' > /dev/null
	dune exec bench/bench_solver.exe -- --rounds 40 -k 4 --no-e2e \
		--out /tmp/hire_bench_smoke.json
	@grep -q '"identical": true' /tmp/hire_bench_smoke.json || \
		{ echo "check: FAIL (incremental network diverged)"; exit 1; }
	rm -f /tmp/hire_bench_smoke.json
	dune exec bin/hire_service.exe -- --help=plain | grep -q -- '--recover'
	dune exec bin/hire_sim.exe -- --help=plain | grep -q -- '--journal'
	rm -rf /tmp/hire_check_journal
	dune exec bin/hire_service.exe -- --state-dir /tmp/hire_check_journal/ref \
		-k 8 --horizon 30 --seed 1 --faults --mtbf 40 --mttr 5 \
		--csv /tmp/hire_check_journal/ref.csv > /dev/null
	@if dune exec bin/hire_service.exe -- --state-dir /tmp/hire_check_journal/run \
		-k 8 --horizon 30 --seed 1 --faults --mtbf 40 --mttr 5 \
		--crash-at 300 > /dev/null 2>&1; then \
		echo "check: FAIL (armed crash should exit non-zero)"; exit 1; fi
	printf '\012\000\000' >> /tmp/hire_check_journal/run/journal/wal.bin
	dune exec bin/hire_service.exe -- --state-dir /tmp/hire_check_journal/run \
		--recover --obs-summary --csv /tmp/hire_check_journal/rec.csv \
		| grep -Eq 'journal\.torn_tail +1'
	cmp /tmp/hire_check_journal/ref.csv /tmp/hire_check_journal/rec.csv
	rm -rf /tmp/hire_check_journal
	dune exec bin/hire_service.exe -- --help=plain | grep -q -- '--serve'
	rm -rf /tmp/hire_check_server /tmp/hire_check_notadir
	touch /tmp/hire_check_notadir
	@if dune exec bin/hire_service.exe -- --state-dir /tmp/hire_check_notadir/sub \
		-k 4 --horizon 10 2>/tmp/hire_service_err.txt >/dev/null; then \
		echo "check: FAIL (unusable state dir should exit non-zero)"; exit 1; fi
	@test "$$(wc -l < /tmp/hire_service_err.txt)" -eq 1 || \
		{ echo "check: FAIL (error should be one line, got:)"; cat /tmp/hire_service_err.txt; exit 1; }
	@grep -q '^hire_service:' /tmp/hire_service_err.txt || \
		{ echo "check: FAIL (expected hire_service: error prefix, got:)"; cat /tmp/hire_service_err.txt; exit 1; }
	rm -f /tmp/hire_check_notadir /tmp/hire_service_err.txt
	@./_build/default/bin/hire_service.exe --serve --state-dir /tmp/hire_check_server \
		-k 4 --horizon 0 --seed 1 --round-interval 0.2 \
		--csv /tmp/hire_check_server/server.csv > /tmp/hire_check_server.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 100); do test -S /tmp/hire_check_server/server.sock && break; sleep 0.1; done; \
	./_build/default/bin/hire_client.exe --socket /tmp/hire_check_server/server.sock \
		--submit 3 --drain --shutdown > /dev/null \
		|| { echo "check: FAIL (hire_client session failed)"; kill $$pid 2>/dev/null; exit 1; }; \
	wait $$pid || { echo "check: FAIL (server exited non-zero)"; cat /tmp/hire_check_server.log; exit 1; }
	@test -s /tmp/hire_check_server/server.csv || \
		{ echo "check: FAIL (serve-mode CSV missing)"; exit 1; }
	rm -rf /tmp/hire_check_server /tmp/hire_check_server.log
	rm -rf /tmp/hire_check_failpt
	@HIRE_FAILPOINTS='seed=1;journal.fsync=1*eio' \
	./_build/default/bin/hire_service.exe --serve --state-dir /tmp/hire_check_failpt \
		-k 4 --horizon 0 --seed 1 --round-interval 0.2 \
		> /tmp/hire_check_failpt.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 100); do test -S /tmp/hire_check_failpt/server.sock && break; sleep 0.1; done; \
	./_build/default/bin/hire_client.exe --socket /tmp/hire_check_failpt/server.sock \
		--submit 3 --client-prefix fp --retries 8 --drain --shutdown > /dev/null \
		|| { echo "check: FAIL (client session through failpoints failed)"; kill $$pid 2>/dev/null; exit 1; }; \
	wait $$pid || { echo "check: FAIL (failpoint server exited non-zero)"; cat /tmp/hire_check_failpt.log; exit 1; }
	@grep -q 'fault injection armed: failpoints seed=1' /tmp/hire_check_failpt.log || \
		{ echo "check: FAIL (armed-failpoints startup line missing)"; cat /tmp/hire_check_failpt.log; exit 1; }
	@grep -q '^degraded: shedding submissions after storage failure' /tmp/hire_check_failpt.log || \
		{ echo "check: FAIL (degraded-mode entry line missing)"; cat /tmp/hire_check_failpt.log; exit 1; }
	@grep -q '^healthy: storage writes succeed again' /tmp/hire_check_failpt.log || \
		{ echo "check: FAIL (degraded-mode exit line missing)"; cat /tmp/hire_check_failpt.log; exit 1; }
	rm -rf /tmp/hire_check_failpt /tmp/hire_check_failpt.log
	@echo "check: OK"

# odoc is optional in this environment; the lib/obs dune env marks its
# odoc warnings fatal, so when odoc is present the docs must be clean.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @doc; \
	else \
		echo "doc: odoc not installed, skipping"; \
	fi

clean:
	dune clean
