.PHONY: all build test check doc clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate plus smoke-checks that the observability and fault flags
# are wired into the CLI (docs/OBSERVABILITY.md, docs/FAULTS.md) and
# that a small deterministic fault-injected run completes.
check:
	dune build
	dune runtest
	dune exec bin/hire_sim.exe -- --help=plain | grep -q -- '--trace'
	dune exec bin/hire_sim.exe -- --help=plain | grep -q -- '--obs-summary'
	dune exec bin/hire_sim.exe -- --help=plain | grep -q -- '--faults'
	dune exec bin/hire_sim.exe -- --scheduler yarn-concurrent --mu 0.25 -k 4 \
		--horizon 30 --seeds 1 --faults --mtbf 40 --mttr 5 > /dev/null
	@echo "check: OK"

# odoc is optional in this environment; the lib/obs dune env marks its
# odoc warnings fatal, so when odoc is present the docs must be clean.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @doc; \
	else \
		echo "doc: odoc not installed, skipping"; \
	fi

clean:
	dune clean
