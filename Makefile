.PHONY: all build test check doc clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate plus a smoke-check that the observability flags are wired
# into the CLI (docs/OBSERVABILITY.md documents them).
check:
	dune build
	dune runtest
	dune exec bin/hire_sim.exe -- --help=plain | grep -q -- '--trace'
	dune exec bin/hire_sim.exe -- --help=plain | grep -q -- '--obs-summary'
	@echo "check: OK"

# odoc is optional in this environment; the lib/obs dune env marks its
# odoc warnings fatal, so when odoc is present the docs must be clean.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
		dune build @doc; \
	else \
		echo "doc: odoc not installed, skipping"; \
	fi

clean:
	dune clean
