(** K8++ (§6.1): a queue-based best-effort policy inspired by
    Kubernetes' default scheduler.  For each request it resumes a
    round-robin cursor over the machines, collects feasible candidates
    until it has seen 5% of the fleet that fits (sampling at most 10% of
    machines before settling for whatever was found), scores them with
    the default multi-dimensional cost model (least-requested combined
    with balanced-allocation), and allocates the best. *)

val create : mode:Modes.mode -> Sim.Cluster.t -> Sim.Scheduler_intf.t
