(** CoCo++ (§6.1): a flow-based scheduler with a CoCo/Firmament-style
    network and cost model, using the same MCMF solver as HIRE.

    Retrofit limitations, as in the paper: it cannot handle job
    alternatives within a scheduling round (so it runs only in timeout
    mode via {!Modes}), it ignores topology locality, and it cannot track
    INC resource reuse (every instance is charged the full registration).
    INC compatibility is still respected — switches are reachable only
    for groups whose service they support ("one virtual rack per INC
    service"). *)

val create : Sim.Cluster.t -> Sim.Scheduler_intf.t
