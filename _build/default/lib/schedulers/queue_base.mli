(** Shared skeleton of the queue-based retrofitted baselines (Yarn++ and
    K8++): FIFO job iteration with a pluggable machine-picking policy
    over the {!Modes} alternative handling.

    Per round the skeleton: processes mode timers, walks the queued jobs
    in policy order, asks the policy for a machine per task, charges the
    cluster, and accounts think time per allocation attempt (the paper
    calibrates 0.4–7.2 ms per allocation for queue-based schedulers). *)

type pick = time:float -> Modes.mjob -> Modes.tg_rt -> int option

(** [make ~name ~think_per_alloc ~pick cluster modes] assembles a
    scheduler.  [pick] must return a machine on which the task fits
    {e right now} (the skeleton charges it immediately); [None] skips the
    group for this round.  [order_jobs] defaults to FIFO. *)
val make :
  name:string ->
  think_per_alloc:float ->
  ?max_allocs_per_round:int ->
  ?order_jobs:(Modes.mjob list -> Modes.mjob list) ->
  pick:pick ->
  Sim.Cluster.t ->
  Modes.t ->
  Sim.Scheduler_intf.t
