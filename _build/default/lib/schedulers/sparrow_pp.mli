(** Sparrow++ (§6.1): a distributed scheduler using batch sampling with
    late binding (power of two choices).  For a group with m unscheduled
    tasks it samples 2·m feasible machines, enqueues task reservations on
    the m shortest per-machine queues, and machines start reservations as
    resources free up.  A 200 ms re-check timer adds another sampling
    round whenever a group's outstanding reservations fall below 50% of
    its remaining tasks — the paper's mitigation for INC starvation on
    saturated switches. *)

val create : mode:Modes.mode -> seed:int -> Sim.Cluster.t -> Sim.Scheduler_intf.t
