(** Yarn++ (§6.1): a queuing-based delay scheduler inspired by the Yarn
    capacity scheduler.  Two FIFO queues by priority class (service
    before batch), rack-aware server placement with a 100 ms
    rack-preference delay, and a 1-minute starvation revert of INC
    flavor decisions in concurrent mode.  INC tasks take the first
    feasible switch — locality-unaware, as retrofitted. *)

val create : mode:Modes.mode -> Sim.Cluster.t -> Sim.Scheduler_intf.t
