module Poly_req = Hire.Poly_req
module Vec = Prelude.Vec

let think_per_alloc = 0.002
let feasible_fraction = 0.05
let sample_fraction = 0.10

(* The K8 default scoring pair: prefer machines that stay least
   requested and most balanced after the allocation. *)
let score ~capacity ~available ~demand =
  let after = Vec.sub available demand in
  let free_frac = Vec.div after capacity in
  let util_after = Array.map (fun f -> 1.0 -. f) free_frac in
  (Vec.avg free_frac +. (1.0 -. Vec.stddev util_after)) /. 2.0

let create ~mode cluster =
  let modes = Modes.create mode in
  let cursor_server = ref 0 and cursor_switch = ref 0 in
  let pick ~time:_ (_job : Modes.mjob) (rt : Modes.tg_rt) =
    let pool = Policy_util.machine_pool cluster rt in
    let n = Array.length pool in
    if n = 0 then None
    else begin
      let cursor = if Poly_req.is_network rt.tg then cursor_switch else cursor_server in
      let want = max 1 (int_of_float (feasible_fraction *. float_of_int n)) in
      let sample_budget = max want (int_of_float (sample_fraction *. float_of_int n)) in
      let feasible m =
        if Poly_req.is_network rt.tg then Policy_util.switch_feasible cluster ~switch:m rt
        else Policy_util.server_fits cluster ~server:m ~demand:rt.tg.Poly_req.demand
      in
      let candidates = ref [] in
      let scanned = ref 0 in
      (* Resume the round-robin scan where the previous request stopped;
         keep scanning past the sample budget only while empty-handed. *)
      while
        !scanned < n
        && (List.length !candidates < want
           && (!scanned < sample_budget || !candidates = []))
      do
        let m = pool.((!cursor + !scanned) mod n) in
        if feasible m then candidates := m :: !candidates;
        incr scanned
      done;
      cursor := (!cursor + !scanned) mod n;
      match !candidates with
      | [] -> None
      | cs ->
          let score_of m =
            if Poly_req.is_network rt.tg then begin
              let _, _, demand = Policy_util.unshared_parts rt.tg in
              score
                ~capacity:(Hire.Sharing.capacity (Sim.Cluster.sharing cluster))
                ~available:(Hire.Sharing.available (Sim.Cluster.sharing cluster) m)
                ~demand
            end
            else
              score
                ~capacity:(Sim.Cluster.server_capacity cluster)
                ~available:(Sim.Cluster.server_available cluster m)
                ~demand:rt.tg.Poly_req.demand
          in
          let best =
            List.fold_left
              (fun acc m ->
                let s = score_of m in
                match acc with
                | Some (_, sb) when sb >= s -> acc
                | _ -> Some (m, s))
              None cs
          in
          Option.map fst best
    end
  in
  Queue_base.make
    ~name:("k8-" ^ Modes.mode_to_string mode)
    ~think_per_alloc ~pick cluster modes
