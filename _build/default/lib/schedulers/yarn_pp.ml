module Poly_req = Hire.Poly_req
module Fat_tree = Topology.Fat_tree

let rack_preference_delay = 0.1 (* seconds *)
let think_per_alloc = 0.0012

let create ~mode cluster =
  let modes = Modes.create ~revert_after:60.0 mode in
  let topo = Sim.Cluster.topo cluster in
  let pick ~time (job : Modes.mjob) (rt : Modes.tg_rt) =
    match rt.tg.Poly_req.kind with
    | Poly_req.Network_tg _ ->
        (* Locality-unaware: first feasible switch in id order. *)
        Array.find_opt
          (fun s -> Policy_util.switch_feasible cluster ~switch:s rt)
          (Fat_tree.switches topo)
    | Poly_req.Server_tg -> (
        let demand = rt.tg.Poly_req.demand in
        let preferred = Policy_util.job_tors cluster job in
        let in_preferred_rack =
          List.find_map
            (fun tor ->
              Array.find_opt
                (fun s -> Policy_util.server_fits cluster ~server:s ~demand)
                (Fat_tree.servers_under topo tor))
            preferred
        in
        match in_preferred_rack with
        | Some s -> Some s
        | None ->
            if preferred <> [] && time -. job.arrival < rack_preference_delay then
              None (* delay scheduling: wait briefly for the preferred rack *)
            else
              Array.find_opt
                (fun s -> Policy_util.server_fits cluster ~server:s ~demand)
                (Fat_tree.servers topo))
  in
  let order_jobs jobs =
    (* Service queue drains before the batch queue; FIFO within each. *)
    let service, batch =
      List.partition
        (fun (j : Modes.mjob) -> j.poly.Poly_req.priority = Workload.Job.Service)
        jobs
    in
    service @ batch
  in
  Queue_base.make
    ~name:("yarn-" ^ Modes.mode_to_string mode)
    ~think_per_alloc ~order_jobs ~pick cluster modes
