lib/schedulers/queue_base.mli: Modes Sim
