lib/schedulers/policy_util.mli: Hire Modes Prelude Sim
