lib/schedulers/registry.ml: Coco_pp Hire Hire_adapter K8_pp Modes Printf Sparrow_pp Yarn_pp
