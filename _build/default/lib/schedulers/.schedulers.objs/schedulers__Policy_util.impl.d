lib/schedulers/policy_util.ml: Hire List Modes Prelude Sim Topology
