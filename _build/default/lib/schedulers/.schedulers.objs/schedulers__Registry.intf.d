lib/schedulers/registry.mli: Sim
