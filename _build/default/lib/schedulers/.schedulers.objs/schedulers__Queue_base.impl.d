lib/schedulers/queue_base.ml: Hire List Modes Sim
