lib/schedulers/k8_pp.ml: Array Hire List Modes Option Policy_util Prelude Queue_base Sim
