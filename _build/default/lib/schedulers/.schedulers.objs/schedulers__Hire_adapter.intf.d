lib/schedulers/hire_adapter.mli: Hire Sim
