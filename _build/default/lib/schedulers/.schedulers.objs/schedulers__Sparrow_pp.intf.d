lib/schedulers/sparrow_pp.mli: Modes Sim
