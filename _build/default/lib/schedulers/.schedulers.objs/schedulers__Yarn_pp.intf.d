lib/schedulers/yarn_pp.mli: Modes Sim
