lib/schedulers/sparrow_pp.ml: Array Hashtbl Hire List Modes Policy_util Prelude Queue Seq Sim
