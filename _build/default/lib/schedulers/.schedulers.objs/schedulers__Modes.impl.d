lib/schedulers/modes.ml: Float Hashtbl Hire List
