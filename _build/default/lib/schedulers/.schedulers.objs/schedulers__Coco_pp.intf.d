lib/schedulers/coco_pp.mli: Sim
