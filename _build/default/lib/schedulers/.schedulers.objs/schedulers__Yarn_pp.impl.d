lib/schedulers/yarn_pp.ml: Array Hire List Modes Policy_util Queue_base Sim Topology Workload
