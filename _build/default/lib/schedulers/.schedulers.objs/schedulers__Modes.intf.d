lib/schedulers/modes.mli: Hire
