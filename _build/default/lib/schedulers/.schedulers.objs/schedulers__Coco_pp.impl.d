lib/schedulers/coco_pp.ml: Array Flow Hashtbl Hire List Modes Sim
