lib/schedulers/hire_adapter.ml: Flow Hire List Option Sim
