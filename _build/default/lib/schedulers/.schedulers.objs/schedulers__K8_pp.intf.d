lib/schedulers/k8_pp.mli: Modes Sim
