lib/harness/experiment.mli: Sim
