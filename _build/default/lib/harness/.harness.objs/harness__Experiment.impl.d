lib/harness/experiment.ml: Array Hire List Prelude Schedulers Sim Workload
