type priority = Batch | Service

let server ~id ~instances ~cpu ~mem ~duration =
  {
    Comp_req.comp_id = id;
    template = "server";
    base = { Comp_req.instances; cpu; mem; duration };
    inc_alternatives = [];
  }

let with_alternative store ~service (c : Comp_req.composite) =
  match Comp_store.template_of_service store service with
  | None -> invalid_arg (Printf.sprintf "Api.with_alternative: no template provides %S" service)
  | Some template ->
      if List.mem service c.inc_alternatives then c
      else begin
        (* Composites stay on "server" until their first alternative
           forces a template with INC implementations; additional
           alternatives must come from the same template. *)
        if c.template <> "server" && c.template <> template then
          invalid_arg
            (Printf.sprintf
               "Api.with_alternative: %S is provided by template %S but composite %S uses %S"
               service template c.comp_id c.template);
        { c with template; inc_alternatives = c.inc_alternatives @ [ service ] }
      end

let connect (a : Comp_req.composite) (b : Comp_req.composite) = (a.comp_id, b.comp_id)

let request store ?(priority = Batch) ?(connections = []) composites =
  let req =
    {
      Comp_req.priority =
        (match priority with Batch -> Workload.Job.Batch | Service -> Workload.Job.Service);
      composites;
      connections;
    }
  in
  match Comp_req.validate store req with Ok () -> Ok req | Error e -> Error e

let request_exn store ?priority ?connections composites =
  match request store ?priority ?connections composites with
  | Ok req -> req
  | Error e -> invalid_arg ("Api.request_exn: " ^ e)
