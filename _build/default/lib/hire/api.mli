(** Tenant-facing request-building API, mirroring the paper's List. 1
    (an application master assembling a CompReq):

    {[
      let open Hire.Api in
      let c4 = server ~id:"c4" ~instances:12 ~cpu:16.0 ~mem:8.5 ~duration:300.0 in
      let c5 =
        server ~id:"c5" ~instances:6 ~cpu:16.0 ~mem:32.0 ~duration:300.0
        |> with_alternative store ~service:"netchain"
      in
      let req = request store ~priority:Service [ c4; c5 ] ~connections:[ connect c4 c5 ] in
    ]}

    [with_alternative] looks the service up in the CompStore and rewrites
    the composite onto the template providing it, so tenants never spell
    out implementation internals ([het]); [request] validates the whole
    CompReq against the store before returning it. *)

type priority = Batch | Service

(** A server-implemented composite (the fallback every composite has). *)
val server :
  id:string ->
  instances:int ->
  cpu:float ->
  mem:float ->
  duration:float ->
  Comp_req.composite

(** [with_alternative store ~service c] registers an INC service as a
    runtime alternative for [c], moving [c] onto the template that lists
    the service.
    @raise Invalid_argument if no template provides [service]. *)
val with_alternative : Comp_store.t -> service:string -> Comp_req.composite -> Comp_req.composite

(** Communication dependency between two composites. *)
val connect : Comp_req.composite -> Comp_req.composite -> string * string

(** Assemble and validate the CompReq. *)
val request :
  Comp_store.t ->
  ?priority:priority ->
  ?connections:(string * string) list ->
  Comp_req.composite list ->
  (Comp_req.t, string) result

(** Like {!request} but raising on invalid input. *)
val request_exn :
  Comp_store.t ->
  ?priority:priority ->
  ?connections:(string * string) list ->
  Comp_req.composite list ->
  Comp_req.t
