lib/hire/poly_req.mli: Comp_store Flavor Format Prelude Workload
