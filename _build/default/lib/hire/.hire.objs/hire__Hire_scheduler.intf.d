lib/hire/hire_scheduler.mli: Cost_model Flow Flow_network Locality Poly_req View
