lib/hire/comp_req.mli: Comp_store Format Workload
