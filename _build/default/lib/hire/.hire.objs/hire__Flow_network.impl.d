lib/hire/flow_network.ml: Array Comp_store Cost_model Flavor Float Flow Format Hashtbl List Locality Pending Poly_req Prelude Printf Sharing Topology View
