lib/hire/flow_network.mli: Cost_model Flow Format Locality Pending View
