lib/hire/cost_model.ml: Array Float Prelude Topology Workload
