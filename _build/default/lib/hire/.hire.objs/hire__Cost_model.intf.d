lib/hire/cost_model.mli: Prelude Topology Workload
