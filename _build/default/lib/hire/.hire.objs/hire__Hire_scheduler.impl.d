lib/hire/hire_scheduler.ml: Array Comp_store Cost_model Flavor Flow Flow_network Hashtbl List Locality Pending Poly_req Prelude Sharing Topology View
