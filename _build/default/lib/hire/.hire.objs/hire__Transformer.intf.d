lib/hire/transformer.mli: Comp_req Comp_store Poly_req Prelude
