lib/hire/poly_req.ml: Comp_store Flavor Format List Prelude Printf Workload
