lib/hire/locality.ml: Float Hashtbl List Topology
