lib/hire/comp_store.mli: Prelude
