lib/hire/pending.ml: Array Flavor List Poly_req
