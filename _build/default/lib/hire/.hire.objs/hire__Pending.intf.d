lib/hire/pending.mli: Flavor Poly_req
