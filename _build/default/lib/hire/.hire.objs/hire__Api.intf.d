lib/hire/api.mli: Comp_req Comp_store
