lib/hire/comp_req.ml: Comp_store Format List Printf Result String Workload
