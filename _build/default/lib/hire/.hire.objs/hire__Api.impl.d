lib/hire/api.ml: Comp_req Comp_store List Printf Workload
