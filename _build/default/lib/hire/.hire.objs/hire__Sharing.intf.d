lib/hire/sharing.mli: Prelude Topology
