lib/hire/sharing.ml: Array Hashtbl List Prelude Printf Topology
