lib/hire/view.ml: Prelude Sharing Topology
