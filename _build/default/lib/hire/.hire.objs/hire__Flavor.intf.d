lib/hire/flavor.mli: Format
