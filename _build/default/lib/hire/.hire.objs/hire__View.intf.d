lib/hire/view.mli: Prelude Sharing Topology
