lib/hire/locality.mli: Topology
