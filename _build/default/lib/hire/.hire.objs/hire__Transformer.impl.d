lib/hire/transformer.ml: Array Comp_req Comp_store Flavor Float Hashtbl List Poly_req Prelude
