lib/hire/comp_store.ml: Array Float Hashtbl List Option Prelude Topology
