lib/hire/flavor.ml: Array Format List Printf
