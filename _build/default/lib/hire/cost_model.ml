module Vec = Prelude.Vec
module Fat_tree = Topology.Fat_tree

type params = {
  cost_scale : int;
  pref_lower : float;
  pref_upper : float;
  w_threshold : float;
  gamma : int;
  xi : int;
  max_shortcuts : int;
  max_flavor_decisions : int;
  max_queue_tgs : int;
  locality_aware : bool;
  sharing_aware : bool;
  server_fallback_penalty : float;
}

let default_params =
  {
    cost_scale = 1000;
    pref_lower = 0.5;
    pref_upper = 2.0;
    w_threshold = 0.5;
    gamma = 64;
    xi = 2;
    max_shortcuts = 50;
    max_flavor_decisions = 250;
    max_queue_tgs = 800;
    locality_aware = true;
    sharing_aware = true;
    server_fallback_penalty = 3.5;
  }

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let flatten ?weights components ~penalty params =
  let components = Array.of_list components in
  let n = Array.length components in
  let avg =
    if n = 0 then 0.0
    else begin
      match weights with
      | None -> Array.fold_left ( +. ) 0.0 components /. float_of_int n
      | Some w ->
          if Array.length w <> n then invalid_arg "Cost_model.flatten: weight mismatch";
          let total_w = Array.fold_left ( +. ) 0.0 w in
          if total_w <= 0.0 then 0.0
          else begin
            let acc = ref 0.0 in
            Array.iteri (fun i c -> acc := !acc +. (w.(i) *. c)) components;
            !acc /. total_w
          end
    end
  in
  let v = (clamp01 avg +. Float.max 0.0 penalty) *. float_of_int params.cost_scale in
  int_of_float (Float.round v)

(* ------------------------------------------------------------------ *)
(* Φ functions                                                        *)
(* ------------------------------------------------------------------ *)

let phi_floor_p ~active ~max_possible =
  if max_possible <= 0 then 0.0 else clamp01 (float_of_int active /. float_of_int max_possible)

let phi_tor topo ~switch =
  (* Hops to the closest server: ToR 1, agg 2, core 3; normalized so a
     ToR costs 0 and a core costs 1. *)
  let hops =
    match Fat_tree.kind topo switch with
    | Fat_tree.Tor -> 1
    | Fat_tree.Agg -> 2
    | Fat_tree.Core -> 3
    | Fat_tree.Server -> invalid_arg "Cost_model.phi_tor: not a switch"
  in
  float_of_int (hops - 1) /. 2.0

let phi_loc ~related_placed ~upsilon ~gamma_norm ~server_weight =
  if not related_placed then 0.5
  else begin
    let ws = clamp01 server_weight in
    clamp01 ((ws *. upsilon) +. ((1.0 -. ws) *. (1.0 -. gamma_norm)))
  end

let phi_new ~service_active ~n_active ~max_possible =
  if service_active then 0.0
  else begin
    let delta = if max_possible <= 0 then 0.0 else float_of_int n_active /. float_of_int max_possible in
    1.0 /. (delta +. 1.0)
  end

let phi_pref ~waiting params =
  if waiting >= params.pref_upper then 0.0
  else if waiting <= params.pref_lower then 3.0
  else begin
    let ratio = (waiting -. params.pref_lower) /. (params.pref_upper -. params.pref_lower) in
    3.0 *. -.tanh ((ratio *. 3.0) -. 3.0)
  end

let phi_prio = function Workload.Job.Service -> 0.0 | Workload.Job.Batch -> 1.0

let phi_delay ~waiting ~max_waiting ~placed ~total =
  let frac = if total <= 0 then 0.0 else clamp01 (float_of_int placed /. float_of_int total) in
  let wr = if max_waiting <= 0.0 then 0.0 else clamp01 (waiting /. max_waiting) in
  clamp01 (wr *. exp frac /. exp 1.0)

let phi_w ~waiting params =
  if waiting >= params.w_threshold then 1.0
  else begin
    let ratio = clamp01 (waiting /. params.w_threshold) in
    (0.5 *. cos ((ratio -. 1.0) *. Float.pi)) +. 0.5
  end

let phi_xhat ~estimate ~max_estimate =
  if max_estimate <= 0.0 then 0.0 else clamp01 (estimate /. max_estimate)

(* ------------------------------------------------------------------ *)
(* Edge assembly                                                      *)
(* ------------------------------------------------------------------ *)

let balance_inverted util = clamp01 (1.0 -. Vec.stddev util)

(* avg and stddev of the demand-to-availability ratio (d ⊘ r). *)
let demand_fit ~demand ~available =
  let ratio = Array.map clamp01 (Vec.div demand available) in
  (Vec.avg ratio, clamp01 (Vec.stddev ratio))

let ms_to_k ~util params =
  flatten [ Vec.avg util; balance_inverted util ] ~penalty:0.0 params

let mn_to_k ~util ~phi_tor ~phi_floor params =
  flatten [ Vec.avg util; balance_inverted util; phi_tor; phi_floor ] ~penalty:0.0 params

let gs_shortcut ~demand ~available ~phi_loc ~phi_prio params =
  let fit_avg, fit_dev = demand_fit ~demand ~available in
  flatten [ fit_avg; fit_dev; phi_loc; 1.0; phi_prio ] ~penalty:0.0 params

let gn_shortcut ~demand ~available ~capacity ~phi_loc ~phi_new ~phi_prio params =
  let fit_avg, fit_dev = demand_fit ~demand ~available in
  (* Switches are the scarce resource: unlike servers (load-balanced),
     INC placements are packed best-fit — the cost grows with the
     head-room that would remain, fighting SRAM fragmentation. *)
  let free_after =
    let remaining = Vec.clamp_nonneg (Vec.sub available demand) in
    Vec.avg (Vec.div remaining capacity)
  in
  flatten [ fit_avg; fit_dev; free_after; phi_loc; phi_new; phi_prio ] ~penalty:0.0 params

let g_to_p ~phi_delay params = flatten [ phi_delay ] ~penalty:5.0 params

let f_to_g ~phi_xhat ~phi_pref ?(fallback = false) params =
  let penalty =
    phi_pref +. if fallback then params.server_fallback_penalty else 0.0
  in
  flatten [ phi_xhat ] ~penalty params
let f_to_p ~phi_w params = flatten [ phi_w ] ~penalty:3.0 params
let s_to_f params = flatten [] ~penalty:1.0 params
