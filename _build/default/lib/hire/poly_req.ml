module Vec = Prelude.Vec

type network_info = {
  service : string;
  shape : Comp_store.shape;
  per_switch : Vec.t;
  role : string;
}

type kind = Server_tg | Network_tg of network_info

type task_group = {
  tg_id : int;
  job_id : int;
  comp_id : string;
  kind : kind;
  count : int;
  demand : Vec.t;
  duration : float;
  flavor : Flavor.t;
  connected : int list;
}

type t = {
  job_id : int;
  priority : Workload.Job.priority;
  arrival : float;
  flavor_len : int;
  task_groups : task_group list;
}

let is_network tg = match tg.kind with Network_tg _ -> true | Server_tg -> false
let service_of tg = match tg.kind with Network_tg n -> Some n.service | Server_tg -> None
let network_groups t = List.filter is_network t.task_groups
let server_groups t = List.filter (fun tg -> not (is_network tg)) t.task_groups
let has_inc t = network_groups t <> []
let find_group t tg_id = List.find_opt (fun tg -> tg.tg_id = tg_id) t.task_groups
let total_tasks t = List.fold_left (fun acc tg -> acc + tg.count) 0 t.task_groups

let pp fmt t =
  Format.fprintf fmt "PolyReq job=%d @%.1fs %a flavor-bits=%d@." t.job_id t.arrival
    Workload.Job.pp_priority t.priority t.flavor_len;
  List.iter
    (fun tg ->
      Format.fprintf fmt "  tg%d %s %s x%d demand=%a flavor=%a@." tg.tg_id tg.comp_id
        (match tg.kind with
        | Server_tg -> "server"
        | Network_tg n -> Printf.sprintf "inc:%s%s" n.service (if n.role = "" then "" else ":" ^ n.role))
        tg.count Vec.pp tg.demand Flavor.pp tg.flavor)
    t.task_groups
