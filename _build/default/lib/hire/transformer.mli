(** The model transformer (§4.4): CompReq → PolyReq.

    For every composite the transformer emits one set of task groups per
    implementation variant and wires them into the job's flavor space:

    - the server-based implementation becomes one server task group;
    - an INC alternative becomes the composite's *reduced* server task
      group (the paper models up to 10% server/runtime savings, §6.2)
      plus one or two network task groups whose switch count, overlay
      shape and resource demands come from the service's CompStore
      profile (Tab. 3) — two groups ("spine"/"leaf") for [Spine_leaf]
      services such as DistCache (Fig. 4c);
    - variants of the same composite receive one-hot flavor fragments so
      exactly one is materialized at runtime ([alt]);
    - task groups of the same composite, and of composites connected in
      the CompReq, are marked as connected ([loc]). *)

(** Generator of simulation-unique task-group ids. *)
module Id_gen : sig
  type t

  val create : ?first:int -> unit -> t
  val fresh : t -> int
end

(** [transform store ids rng ~job_id ~arrival req] expands [req].
    Per-instance INC demands are drawn from the service ranges using
    [rng].  Raises [Invalid_argument] if [req] does not validate against
    [store]. *)
val transform :
  Comp_store.t ->
  Id_gen.t ->
  Prelude.Rng.t ->
  job_id:int ->
  arrival:float ->
  Comp_req.t ->
  Poly_req.t
