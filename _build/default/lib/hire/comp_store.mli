(** The composite-template store (CompStore, §4.1).

    The CompStore is HIRE's catalogue of functionality templates and the
    INC services that can implement them, together with their deployment
    profiles: how many switches an instance needs as a function of the
    served group size, the overlay shape, the switch-feature requirement,
    and the per-switch (sharable) versus per-instance resource demands.

    The default store ships the paper's evaluation catalogue (Tab. 3):
    SHArP, IncBricks, NetCache, DistCache, NetChain, Harmonia,
    HovercRaft, and R2P2, with demand ranges as reported there.  Users
    can register additional services and templates ([add_service],
    [add_template]), mirroring the paper's extensibility story (§4.5). *)

module Vec = Prelude.Vec

(** Switch capability classes named by the paper's Tab. 3. *)
type feature = Sharp_asic | Of_accel | P4_14 | P4_16

val feature_to_string : feature -> string

(** Shape of the switch overlay a service deploys (Tab. 3 "PolyReq"
    column).  [Spine_leaf] services are transformed into two connected
    network task groups (cf. Fig. 4c). *)
type shape = Single | Single_tor | Chain | Tree | Spine_leaf

val shape_to_string : shape -> string

type inc_service = {
  name : string;
  feature : feature;
  shape : shape;
  switch_count : group_size:int -> int;
      (** switches needed to serve a group of the given size *)
  per_switch : Vec.t;
      (** demand charged once per (service, switch) — the sharable
          registration part, before the "|" in Tab. 3 *)
  per_instance_range : group_size:int -> Vec.t * Vec.t;
      (** per-instance demand bounds (lo, hi), after the "|" in Tab. 3 *)
  server_saving : float;
      (** fraction of the composite's servers saved when INC serves it
          (the paper caps savings at 10%) *)
  duration_saving : float;  (** likewise for the composite's runtime *)
}

(** [draw_instance_demand svc rng ~group_size] draws a concrete
    per-instance demand uniformly within the service's range. *)
val draw_instance_demand : inc_service -> Prelude.Rng.t -> group_size:int -> Vec.t

(** [sharable_dims svc] marks the dimensions carrying a shared per-switch
    registration (the "(sharable)" label of Fig. 4c). *)
val sharable_dims : inc_service -> bool array

type template = {
  tpl_name : string;
  inc_impls : string list;  (** names of candidate INC services *)
  has_server_impl : bool;
}

type t

(** The paper's catalogue: 8 INC services (Tab. 3) and the 6 composite
    templates of Fig. 4a. *)
val default : unit -> t

val add_service : t -> inc_service -> unit
val add_template : t -> template -> unit
val find_service : t -> string -> inc_service option

(** @raise Not_found on unknown service. *)
val service_exn : t -> string -> inc_service

val find_template : t -> string -> template option
val template_exn : t -> string -> template
val services : t -> inc_service list
val service_names : t -> string array
val templates : t -> template list

(** The first registered template listing the service as an
    implementation. *)
val template_of_service : t -> string -> string option

(** Custom-P4 services (Fig. 4a's "Custom P4" template with P4_14 and
    P4_16 implementations): generic tenant-supplied dataplane programs
    whose demands are given explicitly rather than profiled.  Not part of
    {!default} — register with {!register_custom_p4} when an experiment
    wants them selectable. *)
val custom_p4 :
  name:string ->
  version:[ `P4_14 | `P4_16 ] ->
  switches:int ->
  recirc:float ->
  stages:float ->
  sram_mb:float ->
  ?shared_stages:float ->
  unit ->
  inc_service

(** Adds the service and lists it under the "custom-p4" template. *)
val register_custom_p4 : t -> inc_service -> unit
