(** The HIRE cost model (Appendix A, Tab. 4/Tab. 5).

    Every edge of the flow network carries a multi-dimensional cost
    vector σ⃗ whose components (utilization, multiplexing, locality,
    interference, priority) are produced by the Φ functions below, each
    in [\[0,1\]].  Before the MCMF solve, σ⃗ is flattened by a weighted
    average, a per-edge-type penalty is added, and the result is scaled
    to an integer ([cost_scale] units per 1.0), which is what the solver
    consumes. *)

module Vec = Prelude.Vec

type params = {
  cost_scale : int;  (** integer units per 1.0 of flattened cost *)
  pref_lower : float;  (** Φpref lower waiting-time bound, seconds (paper: 0.5) *)
  pref_upper : float;
      (** Φpref upper bound and flavor-decision timeout, seconds (paper: 2.0) *)
  w_threshold : float;  (** Φw threshold, seconds (paper: 0.5) *)
  gamma : int;  (** initial INC locality gain γ for Alg. 1 *)
  xi : int;  (** decay divisor ξ for Alg. 1 *)
  max_shortcuts : int;  (** shortcut edges per task group (paper: 50) *)
  max_flavor_decisions : int;  (** flavor decisions per round (paper: 250) *)
  max_queue_tgs : int;  (** requesting task groups in the graph (paper: 800) *)
  locality_aware : bool;
      (** false ⇒ Φloc is neutral (CoCo++ retrofit: "ignore topologies") *)
  sharing_aware : bool;
      (** false ⇒ Φnew is neutral and registrations are never shared
          (CoCo++ retrofit: "ignore sharing") *)
  server_fallback_penalty : float;
      (** extra flattened cost on F→G edges of a job's server-fallback
          variant while an INC variant is open.  The paper's primary goal
          is serving INC requests (§6.3) and notes the flatten weights
          "can be used to model priorities or other custom policies"
          (App. A); this weight encodes the tenant's preference for the
          INC implementation it asked for.  Feasibility still dominates:
          an INC variant without any feasible shortcut carries the
          expensive sentinel estimate and loses regardless. *)
}

val default_params : params

(** [flatten ?weights components ~penalty params] averages the σ⃗
    components (uniform weights by default), adds the penalty, and scales
    to a non-negative integer. *)
val flatten : ?weights:float array -> float list -> penalty:float -> params -> int

(* ------------------------------------------------------------------ *)
(* Φ functions (Tab. 5)                                               *)
(* ------------------------------------------------------------------ *)

(** Φ⌊P⌋: active INC services on a switch over the maximum it could
    host — penalizes mixing many services on one switch. *)
val phi_floor_p : active:int -> max_possible:int -> float

(** ΦToR: distance of a switch from its closest server, normalized —
    ToRs cost 0, cores cost 1. *)
val phi_tor : Topology.Fat_tree.t -> switch:int -> float

(** Φloc: joint server/INC locality; [upsilon] is Eq. 6's Υ (already
    normalized), [gamma_norm] the normalized Γ of Alg. 1, and
    [server_weight] ∈ [0,1] the task-count weight of the server side.
    Returns 0.5 (neutral) when nothing related is placed yet
    ([related_placed = false]). *)
val phi_loc :
  related_placed:bool -> upsilon:float -> gamma_norm:float -> server_weight:float -> float

(** Φnew: 0 when the group's service is already active on the switch;
    otherwise 1/(δ+1) with δ the switch's active-service fraction. *)
val phi_new : service_active:bool -> n_active:int -> max_possible:int -> float

(** Φpref (penalty on F→G): 3·(−tanh(ratio·3 − 3)) for waiting time
    within [lower, upper]; 3 below; 0 above — young jobs should rather
    wait than take an expensive flavor. *)
val phi_pref : waiting:float -> params -> float

(** Φprio: 0 for the highest priority class, 1 for the lowest. *)
val phi_prio : Workload.Job.priority -> float

(** Φdelay (G→P): postponing cost growing with waiting time and with the
    fraction of the group already scheduled:
    w·e^(placed/total) / (max_w·e). *)
val phi_delay : waiting:float -> max_waiting:float -> placed:int -> total:int -> float

(** Φw (F→P): 1 above the threshold, else ½·cos((ratio−1)·π)+½. *)
val phi_w : waiting:float -> params -> float

(** Φx̂ (F→G): a flavor's estimated total cost relative to the job's most
    expensive flavor. *)
val phi_xhat : estimate:float -> max_estimate:float -> float

(* ------------------------------------------------------------------ *)
(* Edge-cost assembly (Tab. 4 rows)                                   *)
(* ------------------------------------------------------------------ *)

(** Ms→K: avg utilization + inverted balance. *)
val ms_to_k : util:Vec.t -> params -> int

(** Mn→K: utilization, balance, ΦToR, Φ⌊P⌋. *)
val mn_to_k : util:Vec.t -> phi_tor:float -> phi_floor:float -> params -> int

(** Gs→Ns/Ms shortcut: demand fit (avg and stddev of d ⊘ r), Φloc,
    constant interference 1, Φprio. *)
val gs_shortcut :
  demand:Vec.t -> available:Vec.t -> phi_loc:float -> phi_prio:float -> params -> int

(** Gn→Nn/Mn shortcut: demand fit, best-fit head-room (packs scarce
    switch resources tightly), Φloc, Φnew, Φprio. *)
val gn_shortcut :
  demand:Vec.t ->
  available:Vec.t ->
  capacity:Vec.t ->
  phi_loc:float ->
  phi_new:float ->
  phi_prio:float ->
  params ->
  int

(** G→P: Φdelay + penalty 5. *)
val g_to_p : phi_delay:float -> params -> int

(** F→G: Φx̂ + penalty Φpref (+ the server-fallback preference weight for
    non-INC variants of INC-requesting jobs). *)
val f_to_g : phi_xhat:float -> phi_pref:float -> ?fallback:bool -> params -> int

(** F→P: Φw + penalty 3. *)
val f_to_p : phi_w:float -> params -> int

(** S→F: penalty 1. *)
val s_to_f : params -> int
