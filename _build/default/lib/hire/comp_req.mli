(** Composite resource requests (CompReq, §4.2).

    A CompReq is a directed graph of composites.  Each composite is
    derived from a CompStore template, always carries a server-based
    implementation (the fallback — INC-enabled applications can by
    definition run without INC), and optionally lists INC services as
    mutually-exclusive alternative implementations to be chosen by the
    scheduler at runtime ([alt]).

    Edges between composites declare communication dependencies and
    drive the locality terms of the cost model ([loc]). *)

type server_spec = {
  instances : int;  (** number of tasks (containers) *)
  cpu : float;
  mem : float;
  duration : float;  (** seconds of runtime per task *)
}

type composite = {
  comp_id : string;
  template : string;  (** template name in the CompStore *)
  base : server_spec;  (** the server-based implementation *)
  inc_alternatives : string list;  (** candidate INC service names *)
}

type t = {
  priority : Workload.Job.priority;
  composites : composite list;
  connections : (string * string) list;  (** pairs of [comp_id]s *)
}

(** [validate store t] checks that composite ids are unique, templates
    and services exist in [store], every INC alternative is listed by its
    template, connections reference existing composites, and specs are
    positive.  Returns an error message on failure. *)
val validate : Comp_store.t -> t -> (unit, string) result

(** [composite t id] finds a composite by id. *)
val composite : t -> string -> composite option

(** True iff some composite lists at least one INC alternative. *)
val wants_inc : t -> bool

(** [of_job store job] lifts a raw workload job into a server-only
    CompReq (one composite per task group, connected in a chain — the
    groups of a job communicate). *)
val of_job : Workload.Job.t -> t

(** [with_inc_alternative t ~comp_id ~service] adds an INC alternative to
    one composite; used by the experiment harness to reach a target INC
    ratio μ. *)
val with_inc_alternative : t -> comp_id:string -> service:string -> t

val pp : Format.formatter -> t -> unit
