(** Runtime state of submitted-but-unfinished PolyReqs, shared by the
    flow-network builder and the HIRE scheduler: per task group the
    remaining task count and the machines already used; per job the
    active flavor x̂ (§5.3 "flow network updates"). *)

type tg_state = {
  tg : Poly_req.task_group;
  mutable remaining : int;  (** tasks still to place *)
  mutable placed_on : int list;  (** machines already hosting a task (multiset) *)
}

type job_state = {
  poly : Poly_req.t;
  mutable x_hat : Flavor.t;
  tg_states : tg_state array;
  mutable inc_flavor_locked : bool;
      (** set once the job's flavor is fully decided or forced *)
}

val of_poly : Poly_req.t -> job_state

(** Status of a task group under the job's current active flavor. *)
val status : job_state -> tg_state -> Flavor.status

val materialized : job_state -> tg_state list
val undecided : job_state -> tg_state list
val dropped : job_state -> tg_state list

(** [decide job tg] applies [tg]'s flavor to the job's x̂ (a flavor
    decision made by the scheduler).  Returns the task groups that the
    decision *drops*. *)
val decide : job_state -> tg_state -> tg_state list

(** [force_server_fallback job] decides every still-undecided composite
    in favour of its server variant — used when the flavor-decision
    timeout (Φpref upper bound) fires.  Returns dropped groups. *)
val force_server_fallback : job_state -> tg_state list

(** [place job tg ~machine] records one task placed. *)
val place : job_state -> tg_state -> machine:int -> unit

(** A job still needs scheduling while some non-dropped group has
    remaining tasks. *)
val has_pending_work : job_state -> bool

(** Some flavor bit of the job is still undecided and relevant. *)
val flavor_open : job_state -> bool

val find_tg : job_state -> int -> tg_state option
