type bit = Zero | One | X
type t = bit array

let all_x n = Array.make n X
let of_bits = Array.of_list
let length = Array.length

type status = Materialized | Undecided | Dropped

let check_len a b op =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Flavor.%s: length mismatch (%d vs %d)" op (Array.length a) (Array.length b))

let status ~active f =
  check_len active f "status";
  let dropped = ref false and undecided = ref false in
  Array.iteri
    (fun i b ->
      match (b, active.(i)) with
      | X, _ -> ()
      | Zero, One | One, Zero -> dropped := true
      | (Zero | One), X -> undecided := true
      | Zero, Zero | One, One -> ())
    f;
  if !dropped then Dropped else if !undecided then Undecided else Materialized

let apply ~active f =
  check_len active f "apply";
  Array.mapi
    (fun i a ->
      match (f.(i), a) with
      | X, _ -> a
      | b, X -> b
      | Zero, One | One, Zero -> invalid_arg "Flavor.apply: contradiction"
      | b, _ -> b)
    active

let compatible a b =
  check_len a b "compatible";
  let ok = ref true in
  Array.iteri
    (fun i x ->
      match (x, b.(i)) with Zero, One | One, Zero -> ok := false | _ -> ())
    a;
  !ok

let equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

let pp fmt t =
  Array.iter
    (fun b ->
      Format.pp_print_char fmt (match b with Zero -> '0' | One -> '1' | X -> 'x'))
    t

let to_string t = Format.asprintf "%a" pp t

module Builder = struct
  type builder = { mutable next : int }

  let create () = { next = 0 }

  let alternatives b n =
    if n <= 0 then invalid_arg "Flavor.Builder.alternatives: n must be positive";
    let base = b.next in
    b.next <- b.next + n;
    Array.init n (fun variant ->
        List.init n (fun coord ->
            (base + coord, if coord = variant then One else Zero)))

  let size b = b.next

  let finalize b fragment =
    let f = all_x b.next in
    List.iter
      (fun (i, bit) ->
        if i < 0 || i >= b.next then invalid_arg "Flavor.Builder.finalize: bad coordinate";
        f.(i) <- bit)
      fragment;
    f
end
