(** Flavor vectors (§4.3 of the paper).

    A PolyReq assigns every task group a flavor vector [f] over
    {0, 1, x}: each coordinate is one decision variable of the job.  The
    job's *active* flavor [x̂] starts all-[x]; the scheduler overwrites
    coordinates with 0/1 as it takes flavor decisions.  A task group is

    - {e materialized} when every non-[x] coordinate of [f] is already
      fixed identically in [x̂],
    - {e dropped} when some coordinate contradicts [x̂] (0 vs 1),
    - {e flavor-undecided} otherwise ([x̂] still has [x] where [f] is
      decided). *)

type bit = Zero | One | X
type t = bit array

val all_x : int -> t
val of_bits : bit list -> t
val length : t -> int

(** Relation of a task group's flavor to a job's active flavor. *)
type status = Materialized | Undecided | Dropped

val status : active:t -> t -> status

(** [apply ~active f] overwrites each [x] coordinate of [active] that is
    decided in [f], returning the new active flavor.  Raises
    [Invalid_argument] on contradiction or length mismatch. *)
val apply : active:t -> t -> t

(** [compatible a b] iff no coordinate has 0 in one and 1 in the other. *)
val compatible : t -> t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Builder used by the model transformer: allocates one-hot decision
    bits for the variants of each multi-variant composite. *)
module Builder : sig
  type builder

  val create : unit -> builder

  (** [alternatives b n] reserves [n] fresh coordinates for an [n]-way
      exclusive choice and returns, for each variant, the flavor fragment
      as a list of (coordinate, bit) pairs: variant [i] holds [One] at
      its own coordinate and [Zero] at its siblings'. *)
  val alternatives : builder -> int -> (int * bit) list array

  (** Number of coordinates allocated so far. *)
  val size : builder -> int

  (** [finalize b fragment] pads a fragment into a full flavor vector of
      the builder's final size ([X] everywhere else). *)
  val finalize : builder -> (int * bit) list -> t
end
