type tg_state = {
  tg : Poly_req.task_group;
  mutable remaining : int;
  mutable placed_on : int list;
}

type job_state = {
  poly : Poly_req.t;
  mutable x_hat : Flavor.t;
  tg_states : tg_state array;
  mutable inc_flavor_locked : bool;
}

let of_poly (poly : Poly_req.t) =
  {
    poly;
    x_hat = Flavor.all_x poly.flavor_len;
    tg_states =
      Array.of_list
        (List.map
           (fun tg -> { tg; remaining = tg.Poly_req.count; placed_on = [] })
           poly.task_groups);
    inc_flavor_locked = poly.flavor_len = 0;
  }

let status job ts = Flavor.status ~active:job.x_hat ts.tg.Poly_req.flavor

let filter_status job wanted =
  Array.to_list job.tg_states |> List.filter (fun ts -> status job ts = wanted)

let materialized job = filter_status job Flavor.Materialized
let undecided job = filter_status job Flavor.Undecided
let dropped job = filter_status job Flavor.Dropped

let decide job ts =
  let before = dropped job in
  job.x_hat <- Flavor.apply ~active:job.x_hat ts.tg.Poly_req.flavor;
  if undecided job = [] then job.inc_flavor_locked <- true;
  let after = dropped job in
  List.filter (fun t -> not (List.memq t before)) after

let force_server_fallback job =
  (* The server variant of each composite is the one whose task groups
     are all Server_tg; applying the flavor of any still-undecided server
     group resolves that composite to its fallback. *)
  let rec fix dropped_acc =
    let candidates =
      undecided job
      |> List.filter (fun ts -> not (Poly_req.is_network ts.tg))
      |> List.filter (fun ts -> Flavor.compatible job.x_hat ts.tg.Poly_req.flavor)
    in
    match candidates with
    | [] ->
        job.inc_flavor_locked <- true;
        dropped_acc
    | ts :: _ -> fix (dropped_acc @ decide job ts)
  in
  fix []

let place _job ts ~machine =
  if ts.remaining <= 0 then invalid_arg "Pending.place: no remaining tasks";
  ts.remaining <- ts.remaining - 1;
  ts.placed_on <- machine :: ts.placed_on

let has_pending_work job =
  Array.exists
    (fun ts -> ts.remaining > 0 && status job ts <> Flavor.Dropped)
    job.tg_states

let flavor_open job = undecided job <> []

let find_tg job tg_id =
  Array.to_list job.tg_states |> List.find_opt (fun ts -> ts.tg.Poly_req.tg_id = tg_id)
