(** Polymorphic resource requests (PolyReq, §4.3): the scheduler-facing
    form of a job, produced from a CompReq by the model transformer.

    A PolyReq is a set of connected task groups.  Server task groups run
    on servers (demand over CPU/memory); network task groups run on INC
    switches (demand over recirculation/stages/SRAM).  Task groups carry
    flavor vectors making alternative implementations mutually exclusive
    ([alt]); network groups additionally carry the sharable per-switch
    registration demand exploited by non-linear sharing ([nol]). *)

module Vec = Prelude.Vec

type network_info = {
  service : string;
  shape : Comp_store.shape;
  per_switch : Vec.t;
      (** sharable registration demand charged once per (service, switch) *)
  role : string;  (** "", or "spine"/"leaf" for two-tier overlays *)
}

type kind = Server_tg | Network_tg of network_info

type task_group = {
  tg_id : int;  (** unique across the simulation *)
  job_id : int;
  comp_id : string;
  kind : kind;
  count : int;  (** tasks (server) or switch slots (network) *)
  demand : Vec.t;  (** per task, in the dimensions of its machine class *)
  duration : float;
  flavor : Flavor.t;
  connected : int list;  (** tg_ids with communication dependencies *)
}

type t = {
  job_id : int;
  priority : Workload.Job.priority;
  arrival : float;
  flavor_len : int;
  task_groups : task_group list;
}

val is_network : task_group -> bool
val service_of : task_group -> string option

(** Task groups that request INC resources. *)
val network_groups : t -> task_group list

val server_groups : t -> task_group list
val has_inc : t -> bool
val find_group : t -> int -> task_group option
val total_tasks : t -> int
val pp : Format.formatter -> t -> unit
