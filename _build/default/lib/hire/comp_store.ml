module Vec = Prelude.Vec
module Res = Topology.Resource

type feature = Sharp_asic | Of_accel | P4_14 | P4_16

let feature_to_string = function
  | Sharp_asic -> "sharp-asic"
  | Of_accel -> "of+accel"
  | P4_14 -> "p4-14"
  | P4_16 -> "p4-16"

type shape = Single | Single_tor | Chain | Tree | Spine_leaf

let shape_to_string = function
  | Single -> "single"
  | Single_tor -> "single-tor"
  | Chain -> "chain"
  | Tree -> "tree"
  | Spine_leaf -> "spine-leaf"

type inc_service = {
  name : string;
  feature : feature;
  shape : shape;
  switch_count : group_size:int -> int;
  per_switch : Vec.t;
  per_instance_range : group_size:int -> Vec.t * Vec.t;
  server_saving : float;
  duration_saving : float;
}

let draw_instance_demand svc rng ~group_size =
  let lo, hi = svc.per_instance_range ~group_size in
  Array.mapi (fun i l -> Prelude.Rng.float_in rng l (Float.max l hi.(i))) lo

let sharable_dims svc = Array.map (fun x -> x > 0.0) svc.per_switch

type template = { tpl_name : string; inc_impls : string list; has_server_impl : bool }

type t = {
  service_tbl : (string, inc_service) Hashtbl.t;
  template_tbl : (string, template) Hashtbl.t;
  mutable service_order : string list;  (* registration order, newest first *)
  mutable template_order : string list;
}

let add_service t svc =
  if not (Hashtbl.mem t.service_tbl svc.name) then
    t.service_order <- svc.name :: t.service_order;
  Hashtbl.replace t.service_tbl svc.name svc

let add_template t tpl =
  if not (Hashtbl.mem t.template_tbl tpl.tpl_name) then
    t.template_order <- tpl.tpl_name :: t.template_order;
  Hashtbl.replace t.template_tbl tpl.tpl_name tpl

let find_service t name = Hashtbl.find_opt t.service_tbl name
let service_exn t name = Hashtbl.find t.service_tbl name
let find_template t name = Hashtbl.find_opt t.template_tbl name
let template_exn t name = Hashtbl.find t.template_tbl name

let services t = List.rev_map (Hashtbl.find t.service_tbl) t.service_order
let service_names t = Array.of_list (List.map (fun s -> s.name) (services t))
let templates t = List.rev_map (Hashtbl.find t.template_tbl) t.template_order

let template_of_service t service =
  templates t
  |> List.find_opt (fun tpl -> List.mem service tpl.inc_impls)
  |> Option.map (fun tpl -> tpl.tpl_name)

let custom_p4 ~name ~version ~switches ~recirc ~stages ~sram_mb ?(shared_stages = 0.0) () =
  if switches <= 0 then invalid_arg "Comp_store.custom_p4: switches must be positive";
  {
    name;
    feature = (match version with `P4_14 -> P4_14 | `P4_16 -> P4_16);
    shape = Single;
    switch_count = (fun ~group_size:_ -> switches);
    per_switch = Vec.of_list [ 0.0; shared_stages; 0.0 ];
    per_instance_range =
      (fun ~group_size:_ ->
        let v = Vec.of_list [ recirc; stages; sram_mb ] in
        (v, Vec.copy v));
    server_saving = 0.05;
    duration_saving = 0.05;
  }

let register_custom_p4 t svc =
  add_service t svc;
  let tpl =
    match Hashtbl.find_opt t.template_tbl "custom-p4" with
    | Some tpl -> tpl
    | None -> { tpl_name = "custom-p4"; inc_impls = []; has_server_impl = true }
  in
  if not (List.mem svc.name tpl.inc_impls) then
    add_template t { tpl with inc_impls = tpl.inc_impls @ [ svc.name ] }

(* ------------------------------------------------------------------ *)
(* The Tab. 3 catalogue                                               *)
(* ------------------------------------------------------------------ *)

let log2_ceil n = if n <= 1 then 1 else int_of_float (ceil (log (float_of_int n) /. log 2.0))

(* Switch demand vectors are [recirc%; stages; sram MB]. *)
let vec3 recirc stages sram = Vec.of_list [ recirc; stages; sram ]

let fixed_range lo hi = fun ~group_size:_ -> (lo, hi)

let sharp =
  {
    name = "sharp";
    feature = Sharp_asic;
    shape = Tree;
    switch_count = (fun ~group_size -> max 1 (log2_ceil group_size));
    per_switch = vec3 0.0 0.0 0.0;
    per_instance_range = fixed_range (vec3 0.0 0.0 1.0) (vec3 0.0 0.0 8.0);
    server_saving = 0.1;
    duration_saving = 0.1;
  }

let incbricks =
  {
    name = "incbricks";
    feature = Of_accel;
    shape = Single;
    switch_count = (fun ~group_size -> max 3 (log2_ceil group_size));
    per_switch = vec3 0.0 0.0 0.0;
    per_instance_range = fixed_range (vec3 0.0 4.0 3.0) (vec3 40.0 8.0 12.0);
    server_saving = 0.08;
    duration_saving = 0.08;
  }

let netcache =
  {
    name = "netcache";
    feature = P4_14;
    shape = Single_tor;
    switch_count = (fun ~group_size -> max 3 (log2_ceil group_size));
    per_switch = vec3 0.0 8.0 0.0;
    per_instance_range = fixed_range (vec3 0.0 0.0 6.0) (vec3 10.0 8.0 12.0);
    server_saving = 0.1;
    duration_saving = 0.1;
  }

let distcache =
  {
    name = "distcache";
    feature = P4_14;
    shape = Spine_leaf;
    switch_count = (fun ~group_size -> max 3 (log2_ceil group_size));
    per_switch = vec3 0.0 8.0 0.0;
    per_instance_range = fixed_range (vec3 0.0 0.0 6.0) (vec3 10.0 8.0 12.0);
    server_saving = 0.1;
    duration_saving = 0.1;
  }

let netchain =
  {
    name = "netchain";
    feature = P4_14;
    shape = Chain;
    switch_count = (fun ~group_size -> max 3 (int_of_float (ceil (3.0 *. float_of_int group_size /. 1000.0))));
    per_switch = vec3 0.0 8.0 0.0;
    per_instance_range = fixed_range (vec3 0.0 0.0 6.0) (vec3 10.0 8.0 12.0);
    server_saving = 0.1;
    duration_saving = 0.1;
  }

let harmonia =
  {
    name = "harmonia";
    feature = P4_14;
    shape = Single;
    switch_count = (fun ~group_size -> max 1 ((group_size + 8999) / 9000));
    per_switch = vec3 0.0 3.0 0.0;
    per_instance_range = fixed_range (vec3 0.0 0.0 0.75) (vec3 0.0 3.0 2.0);
    server_saving = 0.06;
    duration_saving = 0.06;
  }

let hovercraft =
  {
    name = "hovercraft";
    feature = P4_14;
    shape = Single;
    switch_count = (fun ~group_size -> max 1 ((group_size + 8999) / 9000));
    per_switch = vec3 0.0 18.0 0.0;
    per_instance_range = fixed_range (vec3 0.0 0.0 0.0) (vec3 10.0 18.0 0.125);
    server_saving = 0.06;
    duration_saving = 0.06;
  }

let r2p2 =
  {
    name = "r2p2";
    feature = P4_14;
    shape = Single;
    switch_count = (fun ~group_size -> max 1 ((group_size + 8999) / 9000));
    per_switch = vec3 0.0 0.0 0.0;
    per_instance_range =
      (fun ~group_size ->
        (* Stage usage scales with the served group, capped at the
           pipeline depth (Tab. 3 gives [0, |G|]). *)
        let stage_cap = Float.min (float_of_int group_size) 48.0 in
        (vec3 0.0 0.0 0.001, vec3 30.0 stage_cap 0.064));
    server_saving = 0.05;
    duration_saving = 0.05;
  }

let default_services = [ sharp; incbricks; netcache; distcache; netchain; harmonia; hovercraft; r2p2 ]

let default_templates =
  [
    { tpl_name = "server"; inc_impls = []; has_server_impl = true };
    { tpl_name = "aggregator"; inc_impls = [ "sharp" ]; has_server_impl = true };
    { tpl_name = "cache"; inc_impls = [ "netcache"; "distcache"; "incbricks" ]; has_server_impl = true };
    {
      tpl_name = "coordinator";
      inc_impls = [ "netchain"; "harmonia"; "hovercraft" ];
      has_server_impl = true;
    };
    { tpl_name = "load-balancer"; inc_impls = [ "r2p2" ]; has_server_impl = true };
    { tpl_name = "custom-p4"; inc_impls = []; has_server_impl = true };
  ]

let default () =
  let t =
    {
      service_tbl = Hashtbl.create 16;
      template_tbl = Hashtbl.create 16;
      service_order = [];
      template_order = [];
    }
  in
  List.iter (add_service t) default_services;
  List.iter (add_template t) default_templates;
  (* Dimension sanity: every vector must use the switch dimensions. *)
  List.iter
    (fun s ->
      assert (Vec.dim s.per_switch = Res.Switch.count);
      let lo, hi = s.per_instance_range ~group_size:10 in
      assert (Vec.dim lo = Res.Switch.count && Vec.dim hi = Res.Switch.count))
    default_services;
  t
