(** CSV import/export of job traces.

    The synthetic generator ({!Trace_gen}) stands in for the Alibaba 2018
    trace; this module lets users who *do* have a real trace (or any
    pre-processed workload) replay it instead, and lets experiments dump
    the exact stream they replayed.

    Format (header required, one row per task group):
    {[ job_id,arrival_s,priority,tg_index,count,cpu,mem,duration_s ]}
    with [priority ∈ {batch, service}].  Rows of one job must share
    [job_id], [arrival_s], and [priority]; jobs are emitted sorted by
    arrival. *)

val csv_header : string

(** [to_csv jobs] renders a trace (header + rows). *)
val to_csv : Job.t list -> string

(** [of_csv contents] parses a trace.  Returns a descriptive error on
    malformed input (wrong column counts, unparsable numbers, negative
    values, inconsistent job rows). *)
val of_csv : string -> (Job.t list, string) result

val write_file : string -> Job.t list -> unit
val read_file : string -> (Job.t list, string) result
