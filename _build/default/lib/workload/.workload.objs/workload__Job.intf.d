lib/workload/job.mli: Format
