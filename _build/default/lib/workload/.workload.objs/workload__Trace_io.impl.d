lib/workload/trace_io.ml: Buffer Fun Hashtbl Job List Printf Result String
