lib/workload/job.ml: Format List
