lib/workload/trace_io.mli: Job
