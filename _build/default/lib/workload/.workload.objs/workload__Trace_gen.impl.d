lib/workload/trace_gen.ml: Float Job List Prelude
