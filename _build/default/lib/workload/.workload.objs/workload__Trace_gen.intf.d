lib/workload/trace_gen.mli: Job Prelude
