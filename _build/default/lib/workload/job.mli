(** Server-side job descriptions produced by the trace generator.

    A job arrives at a point in time, carries a priority class (the
    Alibaba 2018 trace distinguishes two), and consists of one or more
    task groups: bundles of identical tasks with a common resource demand
    and duration.  INC alternatives are *not* part of the raw workload —
    the experiment harness augments a target fraction μ of jobs with INC
    composites, mirroring the paper's methodology (§6.2). *)

type priority = Batch | Service

val pp_priority : Format.formatter -> priority -> unit
val priority_to_string : priority -> string

type task_group = {
  tg_index : int;  (** position of the group within its job *)
  count : int;  (** number of identical tasks; >= 1 *)
  cpu : float;  (** CPU cores per task *)
  mem : float;  (** normalized memory units per task *)
  duration : float;  (** task runtime in seconds once started *)
}

type t = {
  id : int;
  arrival : float;  (** submission time, seconds from simulation start *)
  priority : priority;
  groups : task_group list;
}

val total_tasks : t -> int

(** Aggregate CPU·seconds of the job (work volume), used for load
    accounting in tests and the generator's self-calibration. *)
val cpu_seconds : t -> float

val pp : Format.formatter -> t -> unit
