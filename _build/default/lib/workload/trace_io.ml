let csv_header = "job_id,arrival_s,priority,tg_index,count,cpu,mem,duration_s"

let to_csv jobs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun (j : Job.t) ->
      List.iter
        (fun (g : Job.task_group) ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%.6f,%s,%d,%d,%.6f,%.6f,%.6f\n" j.id j.arrival
               (Job.priority_to_string j.priority)
               g.tg_index g.count g.cpu g.mem g.duration))
        j.groups)
    jobs;
  Buffer.contents buf

let ( let* ) r f = Result.bind r f

let parse_priority = function
  | "batch" -> Ok Job.Batch
  | "service" -> Ok Job.Service
  | other -> Error (Printf.sprintf "unknown priority %S" other)

let parse_row line_no line =
  let fields = String.split_on_char ',' (String.trim line) in
  match fields with
  | [ job_id; arrival; priority; tg_index; count; cpu; mem; duration ] -> (
      let int name s =
        match int_of_string_opt (String.trim s) with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "line %d: bad %s %S" line_no name s)
      in
      let float name s =
        match float_of_string_opt (String.trim s) with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "line %d: bad %s %S" line_no name s)
      in
      let* job_id = int "job_id" job_id in
      let* arrival = float "arrival_s" arrival in
      let* priority = parse_priority (String.trim priority) in
      let* tg_index = int "tg_index" tg_index in
      let* count = int "count" count in
      let* cpu = float "cpu" cpu in
      let* mem = float "mem" mem in
      let* duration = float "duration_s" duration in
      if arrival < 0.0 || count <= 0 || cpu <= 0.0 || mem <= 0.0 || duration <= 0.0 then
        Error (Printf.sprintf "line %d: non-positive quantity" line_no)
      else Ok (job_id, arrival, priority, { Job.tg_index; count; cpu; mem; duration }))
  | _ -> Error (Printf.sprintf "line %d: expected 8 fields, got %d" line_no (List.length fields))

let of_csv contents =
  let lines =
    String.split_on_char '\n' contents
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty trace"
  | (_, header) :: rows ->
      if String.trim header <> csv_header then
        Error (Printf.sprintf "bad header: expected %S" csv_header)
      else begin
        let* parsed =
          List.fold_left
            (fun acc (line_no, line) ->
              let* acc = acc in
              let* row = parse_row line_no line in
              Ok (row :: acc))
            (Ok []) rows
        in
        let parsed = List.rev parsed in
        (* Group consecutive rows by job id, checking consistency. *)
        let jobs_tbl = Hashtbl.create 64 in
        let order = ref [] in
        let* () =
          List.fold_left
            (fun acc (job_id, arrival, priority, group) ->
              let* () = acc in
              match Hashtbl.find_opt jobs_tbl job_id with
              | None ->
                  Hashtbl.replace jobs_tbl job_id (arrival, priority, [ group ]);
                  order := job_id :: !order;
                  Ok ()
              | Some (a, p, groups) ->
                  if a <> arrival then
                    Error (Printf.sprintf "job %d: inconsistent arrival times" job_id)
                  else if p <> priority then
                    Error (Printf.sprintf "job %d: inconsistent priorities" job_id)
                  else begin
                    Hashtbl.replace jobs_tbl job_id (a, p, group :: groups);
                    Ok ()
                  end)
            (Ok ()) parsed
        in
        let jobs =
          List.rev !order
          |> List.map (fun id ->
                 let arrival, priority, groups = Hashtbl.find jobs_tbl id in
                 { Job.id; arrival; priority; groups = List.rev groups })
          |> List.sort (fun (a : Job.t) b -> compare (a.arrival, a.id) (b.arrival, b.id))
        in
        Ok jobs
      end

let write_file path jobs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv jobs))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_csv (really_input_string ic (in_channel_length ic)))
