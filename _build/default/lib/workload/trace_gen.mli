(** Synthetic workload generator standing in for the Alibaba 2018 cluster
    trace used by the paper.

    The paper replays 36 hours of a 4000-machine production trace with
    two priority classes.  That trace (1.5 GB) is not available here, so
    we generate a statistically similar stream (see DESIGN.md §2):

    - Poisson arrivals whose rate follows a mild diurnal modulation;
    - ~85% batch jobs (many short tasks, heavy-tailed counts and
      durations, log-normal), ~15% service jobs (fewer, longer tasks);
    - per-task demands drawn from a small set of container shapes,
      memory loosely correlated with CPU;
    - 1–5 task groups per job.

    The generator is deterministic given the [Prelude.Rng.t]. *)

type config = {
  arrival_rate : float;  (** mean job arrivals per second *)
  diurnal_amplitude : float;  (** 0 = flat; 0.3 = ±30% rate swing *)
  diurnal_period : float;  (** seconds per modulation cycle *)
  batch_fraction : float;
  batch_task_count_mu : float;  (** log-normal parameters of tasks/group *)
  batch_task_count_sigma : float;
  service_task_count_mu : float;
  service_task_count_sigma : float;
  batch_duration_mu : float;  (** log-normal parameters of seconds *)
  batch_duration_sigma : float;
  service_duration_mu : float;
  service_duration_sigma : float;
  max_tasks_per_group : int;
  max_groups_per_job : int;
}

val default : config

(** [scaled_rate ~n_servers ~target_utilization config] returns [config]
    with the arrival rate set so the generated stream's expected
    CPU·seconds demand equals [target_utilization] of the cluster's CPU
    capacity (assuming default server capacity). *)
val scaled_rate : n_servers:int -> target_utilization:float -> config -> config

(** [generate config rng ~horizon] produces the jobs arriving in
    [\[0, horizon)] seconds, sorted by arrival time, ids dense from 0. *)
val generate : config -> Prelude.Rng.t -> horizon:float -> Job.t list
