module Rng = Prelude.Rng

type config = {
  arrival_rate : float;
  diurnal_amplitude : float;
  diurnal_period : float;
  batch_fraction : float;
  batch_task_count_mu : float;
  batch_task_count_sigma : float;
  service_task_count_mu : float;
  service_task_count_sigma : float;
  batch_duration_mu : float;
  batch_duration_sigma : float;
  service_duration_mu : float;
  service_duration_sigma : float;
  max_tasks_per_group : int;
  max_groups_per_job : int;
}

let default =
  {
    arrival_rate = 0.5;
    diurnal_amplitude = 0.25;
    diurnal_period = 86_400.0;
    batch_fraction = 0.85;
    (* Batch: median e^2.8 ≈ 16 tasks/group, long tail (Alibaba batch
       jobs typically have tens to hundreds of instances). *)
    batch_task_count_mu = 2.8;
    batch_task_count_sigma = 1.1;
    (* Service: median e^1.6 ≈ 5 tasks/group, lighter tail. *)
    service_task_count_mu = 1.6;
    service_task_count_sigma = 0.8;
    (* Batch durations: median e^4.5 ≈ 90 s. *)
    batch_duration_mu = 4.5;
    batch_duration_sigma = 1.0;
    (* Service durations: median e^7 ≈ 1100 s. *)
    service_duration_mu = 7.0;
    service_duration_sigma = 0.7;
    max_tasks_per_group = 120;
    max_groups_per_job = 5;
  }

(* Container shapes loosely matching public Alibaba statistics: most
   requests are small; memory correlates with CPU. *)
let container_shapes = [ (0.45, 1.0); (0.30, 2.0); (0.15, 4.0); (0.07, 8.0); (0.03, 16.0) ]

let draw_task_group config rng priority tg_index =
  let mu, sigma, dmu, dsigma =
    match priority with
    | Job.Batch ->
        ( config.batch_task_count_mu,
          config.batch_task_count_sigma,
          config.batch_duration_mu,
          config.batch_duration_sigma )
    | Job.Service ->
        ( config.service_task_count_mu,
          config.service_task_count_sigma,
          config.service_duration_mu,
          config.service_duration_sigma )
  in
  let count =
    let raw = int_of_float (Float.round (Rng.log_normal rng ~mu ~sigma)) in
    max 1 (min config.max_tasks_per_group raw)
  in
  let cpu = Rng.weighted_choice rng container_shapes in
  let mem = cpu *. Rng.float_in rng 1.0 2.5 in
  let duration = Float.max 1.0 (Rng.log_normal rng ~mu:dmu ~sigma:dsigma) in
  { Job.tg_index; count; cpu; mem; duration }

let draw_job config rng ~id ~arrival =
  let priority = if Rng.bernoulli rng config.batch_fraction then Job.Batch else Job.Service in
  let n_groups = Rng.int_in rng 1 config.max_groups_per_job in
  let groups = List.init n_groups (fun i -> draw_task_group config rng priority i) in
  { Job.id; arrival; priority; groups }

let generate config rng ~horizon =
  if config.arrival_rate <= 0.0 then invalid_arg "Trace_gen.generate: rate must be positive";
  let rate_max = config.arrival_rate *. (1.0 +. config.diurnal_amplitude) in
  let rate_at t =
    config.arrival_rate
    *. (1.0
       +. (config.diurnal_amplitude *. sin (2.0 *. Float.pi *. t /. config.diurnal_period)))
  in
  (* Thinning (Lewis–Shedler) for the nonhomogeneous Poisson process. *)
  let rec arrivals t acc =
    let t = t +. Rng.exponential rng ~mean:(1.0 /. rate_max) in
    if t >= horizon then List.rev acc
    else if Rng.bernoulli rng (rate_at t /. rate_max) then arrivals t (t :: acc)
    else arrivals t acc
  in
  let times = arrivals 0.0 [] in
  List.mapi (fun id arrival -> draw_job config rng ~id ~arrival) times

let mean_job_cpu_seconds config =
  (* Empirical estimate from a fixed probe stream; deterministic. *)
  let rng = Rng.create 0x5eed in
  let n = 2000 in
  let acc = ref 0.0 in
  for id = 0 to n - 1 do
    acc := !acc +. Job.cpu_seconds (draw_job config rng ~id ~arrival:0.0)
  done;
  !acc /. float_of_int n

(* The workload library must not depend on the topology library just for
   one constant; keep the default server CPU capacity local. *)
let server_cpu_capacity = 96.0

let scaled_rate ~n_servers ~target_utilization config =
  if n_servers <= 0 then invalid_arg "Trace_gen.scaled_rate: n_servers must be positive";
  if target_utilization <= 0.0 then
    invalid_arg "Trace_gen.scaled_rate: target_utilization must be positive";
  let cluster_cpu = float_of_int n_servers *. server_cpu_capacity in
  let rate = target_utilization *. cluster_cpu /. mean_job_cpu_seconds config in
  { config with arrival_rate = rate }
