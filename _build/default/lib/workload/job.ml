type priority = Batch | Service

let pp_priority fmt = function
  | Batch -> Format.pp_print_string fmt "batch"
  | Service -> Format.pp_print_string fmt "service"

let priority_to_string p = Format.asprintf "%a" pp_priority p

type task_group = {
  tg_index : int;
  count : int;
  cpu : float;
  mem : float;
  duration : float;
}

type t = { id : int; arrival : float; priority : priority; groups : task_group list }

let total_tasks t = List.fold_left (fun acc g -> acc + g.count) 0 t.groups

let cpu_seconds t =
  List.fold_left (fun acc g -> acc +. (float_of_int g.count *. g.cpu *. g.duration)) 0.0 t.groups

let pp fmt t =
  Format.fprintf fmt "job %d @%.1fs %a: %d groups, %d tasks" t.id t.arrival pp_priority
    t.priority (List.length t.groups) (total_tasks t)
