(** Resource dimensions of the two machine classes.

    Following the paper (§4, §6.2) we model servers with two dimensions —
    CPU and memory — and INC switches with three: reserved recirculation
    capacity, RMT stages, and SRAM.  The dimension count is configurable
    in HIRE generally; these are the concrete dimensions used by the
    paper's evaluation and by this reproduction. *)

module Server : sig
  val cpu : int  (** index of the CPU dimension *)

  val mem : int  (** index of the memory dimension *)

  val count : int
  val names : string array

  (** Default server capacity: 96 CPU cores, 100 normalized memory units
      (the Alibaba 2018 trace normalizes memory to \[0,100\]). *)
  val default_capacity : Prelude.Vec.t
end

module Switch : sig
  val recirc : int  (** reserved recirculation capacity, percent *)

  val stages : int  (** RMT pipeline stages *)

  val sram : int  (** on-chip SRAM, MB *)

  val count : int
  val names : string array

  (** Default switch capacity from §6.2: 100% recirculation budget,
      48 stages, 22 MB SRAM. *)
  val default_capacity : Prelude.Vec.t
end

(** [utilization ~capacity ~available] is the per-dimension used fraction
    in [\[0,1\]] (0 where capacity is 0). *)
val utilization : capacity:Prelude.Vec.t -> available:Prelude.Vec.t -> Prelude.Vec.t
