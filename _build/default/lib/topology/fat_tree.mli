(** K-ary fat-tree data-center topology.

    For even [k], the tree has [k] pods, each with [k/2] top-of-rack (ToR)
    switches and [k/2] aggregation switches; [(k/2)²] core switches; and
    [k/2] servers per ToR, i.e. [k³/4] servers in total.  The paper's
    evaluation uses [k = 26] (4394 servers, 845 switches); the default
    experiments in this repository use smaller [k] for runtime.

    Depth convention follows Fig. 6 of the paper: core switches are at
    depth 0, aggregation at 1, ToR at 2, servers at 3. *)

type kind = Core | Agg | Tor | Server

type node = {
  id : int;
  kind : kind;
  depth : int;  (** 0 core, 1 agg, 2 tor, 3 server *)
  pod : int;  (** -1 for core switches *)
  index : int;  (** index within its group *)
}

type t

(** [create ~k] builds a fat-tree; [k] must be even and >= 2. *)
val create : k:int -> t

(** [create_leaf_spine ~spines ~leafs ~servers_per_leaf] builds a
    two-tier leaf–spine fabric: every leaf connects to every spine, and
    [servers_per_leaf] servers hang off each leaf.  Spines take the
    [Core] role (depth 0) and leafs the [Tor] role (depth 2, each leaf
    being its own pod), so all subtree/LCA/detour queries — and therefore
    the whole scheduling stack — work unchanged on this multi-path
    topology (§6.2 mentions multi-path support). *)
val create_leaf_spine : spines:int -> leafs:int -> servers_per_leaf:int -> t

val k : t -> int
val node_count : t -> int
val node : t -> int -> node
val kind : t -> int -> kind
val depth : t -> int -> int
val is_server : t -> int -> bool
val is_switch : t -> int -> bool

(** All server node ids, in id order. *)
val servers : t -> int array

(** All switch node ids (core ++ agg ++ tor), in id order. *)
val switches : t -> int array

val core_switches : t -> int array
val agg_switches : t -> int array
val tor_switches : t -> int array

(** The ToR switch a server is cabled to. *)
val tor_of_server : t -> int -> int

(** Physical neighbours (both directions): servers↔ToR, ToR↔aggs of the
    pod, aggs↔their cores. *)
val neighbors : t -> int -> int list

(** Upstream neighbours only (towards the core). *)
val parents : t -> int -> int list

(** Downstream neighbours only (towards the servers). *)
val children : t -> int -> int list

(** Servers reachable strictly downward from a node ([node] itself if a
    server).  Cached after first computation. *)
val servers_under : t -> int -> int array

(** Switches reachable downward from a switch, including itself. *)
val switches_under : t -> int -> int array

(** [lca_depth t a b] is the depth of the shallowest subtree containing
    both nodes: 2 for same ToR, 1 for same pod, 0 otherwise; for equal
    nodes it is the node's own depth. *)
val lca_depth : t -> int -> int -> int

(** [cover_depth t nodes] is the depth of the shallowest subtree covering
    all given nodes (the minimum pairwise [lca_depth]); the depth of the
    node itself for a singleton.  Raises [Invalid_argument] on []. *)
val cover_depth : t -> int list -> int

(** Switch-detour metric of the paper (§6.2): number of additional levels
    of switch hierarchy needed to cover servers *and* switches of a job,
    beyond the levels needed to cover the servers alone.  Zero when
    [switches] is empty. *)
val detour : t -> servers:int list -> switches:int list -> int

(** Hop distance in the canonical hierarchy (up to the LCA and down). *)
val hop_distance : t -> int -> int -> int

val pp : Format.formatter -> t -> unit
