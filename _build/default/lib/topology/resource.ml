module Vec = Prelude.Vec

module Server = struct
  let cpu = 0
  let mem = 1
  let count = 2
  let names = [| "cpu"; "mem" |]
  let default_capacity = Vec.of_list [ 96.0; 100.0 ]
end

module Switch = struct
  let recirc = 0
  let stages = 1
  let sram = 2
  let count = 3
  let names = [| "recirc"; "stages"; "sram" |]
  let default_capacity = Vec.of_list [ 100.0; 48.0; 22.0 ]
end

let utilization ~capacity ~available =
  Array.mapi
    (fun i cap ->
      if cap <= 0.0 then 0.0
      else Float.max 0.0 (Float.min 1.0 ((cap -. available.(i)) /. cap)))
    capacity
