module Vec = Prelude.Vec

type kind = Core | Agg | Tor | Server

type node = { id : int; kind : kind; depth : int; pod : int; index : int }

type t = {
  k : int;
  nodes : node array;
  core : int array;
  agg : int array;
  tor : int array;
  server_ids : int array;
  parents_adj : int list array;
  children_adj : int list array;
  tor_of : int array;  (* server id -> tor id; -1 for non-servers *)
  servers_under_cache : (int, int array) Hashtbl.t;
  switches_under_cache : (int, int array) Hashtbl.t;
}

let create ~k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Fat_tree.create: k must be even and >= 2";
  let half = k / 2 in
  let n_core = half * half in
  let n_agg = k * half in
  let n_tor = k * half in
  let n_server = k * half * half in
  let total = n_core + n_agg + n_tor + n_server in
  let nodes = Array.make total { id = 0; kind = Core; depth = 0; pod = -1; index = 0 } in
  let core = Array.init n_core (fun i -> i) in
  let agg = Array.init n_agg (fun i -> n_core + i) in
  let tor = Array.init n_tor (fun i -> n_core + n_agg + i) in
  let server_ids = Array.init n_server (fun i -> n_core + n_agg + n_tor + i) in
  Array.iteri
    (fun i id -> nodes.(id) <- { id; kind = Core; depth = 0; pod = -1; index = i })
    core;
  Array.iteri
    (fun i id ->
      nodes.(id) <- { id; kind = Agg; depth = 1; pod = i / half; index = i mod half })
    agg;
  Array.iteri
    (fun i id ->
      nodes.(id) <- { id; kind = Tor; depth = 2; pod = i / half; index = i mod half })
    tor;
  Array.iteri
    (fun i id ->
      (* Server index within its ToR; pod derived from the ToR. *)
      let tor_linear = i / half in
      nodes.(id) <-
        { id; kind = Server; depth = 3; pod = tor_linear / half; index = i mod half })
    server_ids;
  let parents_adj = Array.make total [] in
  let children_adj = Array.make total [] in
  let tor_of = Array.make total (-1) in
  (* agg (p, j) <-> cores in group j *)
  Array.iter
    (fun a ->
      let j = nodes.(a).index in
      for c = j * half to (j * half) + half - 1 do
        parents_adj.(a) <- core.(c) :: parents_adj.(a);
        children_adj.(core.(c)) <- a :: children_adj.(core.(c))
      done)
    agg;
  (* tor (p, i) <-> all aggs of pod p *)
  Array.iter
    (fun t_id ->
      let p = nodes.(t_id).pod in
      for j = 0 to half - 1 do
        let a = agg.((p * half) + j) in
        parents_adj.(t_id) <- a :: parents_adj.(t_id);
        children_adj.(a) <- t_id :: children_adj.(a)
      done)
    tor;
  (* server <-> its tor *)
  Array.iteri
    (fun i s ->
      let t_id = tor.(i / half) in
      parents_adj.(s) <- [ t_id ];
      children_adj.(t_id) <- s :: children_adj.(t_id);
      tor_of.(s) <- t_id)
    server_ids;
  {
    k;
    nodes;
    core;
    agg;
    tor;
    server_ids;
    parents_adj;
    children_adj;
    tor_of;
    servers_under_cache = Hashtbl.create 64;
    switches_under_cache = Hashtbl.create 64;
  }

let create_leaf_spine ~spines ~leafs ~servers_per_leaf =
  if spines <= 0 || leafs <= 0 || servers_per_leaf <= 0 then
    invalid_arg "Fat_tree.create_leaf_spine: all counts must be positive";
  let n_server = leafs * servers_per_leaf in
  let total = spines + leafs + n_server in
  let nodes = Array.make total { id = 0; kind = Core; depth = 0; pod = -1; index = 0 } in
  let core = Array.init spines (fun i -> i) in
  let tor = Array.init leafs (fun i -> spines + i) in
  let server_ids = Array.init n_server (fun i -> spines + leafs + i) in
  Array.iteri
    (fun i id -> nodes.(id) <- { id; kind = Core; depth = 0; pod = -1; index = i })
    core;
  (* Each leaf is its own pod: two servers share a subtree iff they share
     the leaf. *)
  Array.iteri
    (fun i id -> nodes.(id) <- { id; kind = Tor; depth = 2; pod = i; index = 0 })
    tor;
  Array.iteri
    (fun i id ->
      nodes.(id) <-
        { id; kind = Server; depth = 3; pod = i / servers_per_leaf; index = i mod servers_per_leaf })
    server_ids;
  let parents_adj = Array.make total [] in
  let children_adj = Array.make total [] in
  let tor_of = Array.make total (-1) in
  Array.iter
    (fun leaf ->
      Array.iter
        (fun spine ->
          parents_adj.(leaf) <- spine :: parents_adj.(leaf);
          children_adj.(spine) <- leaf :: children_adj.(spine))
        core)
    tor;
  Array.iteri
    (fun i s ->
      let leaf = tor.(i / servers_per_leaf) in
      parents_adj.(s) <- [ leaf ];
      children_adj.(leaf) <- s :: children_adj.(leaf);
      tor_of.(s) <- leaf)
    server_ids;
  {
    k = 0;
    nodes;
    core;
    agg = [||];
    tor;
    server_ids;
    parents_adj;
    children_adj;
    tor_of;
    servers_under_cache = Hashtbl.create 64;
    switches_under_cache = Hashtbl.create 64;
  }

let k t = t.k
let node_count t = Array.length t.nodes

let node t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Fat_tree.node: bad id %d" id);
  t.nodes.(id)

let kind t id = (node t id).kind
let depth t id = (node t id).depth
let is_server t id = kind t id = Server
let is_switch t id = kind t id <> Server
let servers t = t.server_ids

let switches t = Array.concat [ t.core; t.agg; t.tor ]

let core_switches t = t.core
let agg_switches t = t.agg
let tor_switches t = t.tor

let tor_of_server t id =
  if not (is_server t id) then invalid_arg "Fat_tree.tor_of_server: not a server";
  t.tor_of.(id)

let parents t id = (ignore (node t id)); t.parents_adj.(id)
let children t id = (ignore (node t id)); t.children_adj.(id)
let neighbors t id = parents t id @ children t id

let servers_under t id =
  ignore (node t id);
  match Hashtbl.find_opt t.servers_under_cache id with
  | Some arr -> arr
  | None ->
      let acc = ref [] in
      let rec go v =
        if is_server t v then acc := v :: !acc
        else List.iter go (List.sort_uniq compare t.children_adj.(v))
      in
      go id;
      let arr = Array.of_list (List.sort_uniq compare !acc) in
      Hashtbl.replace t.servers_under_cache id arr;
      arr

let switches_under t id =
  if not (is_switch t id) then invalid_arg "Fat_tree.switches_under: not a switch";
  match Hashtbl.find_opt t.switches_under_cache id with
  | Some arr -> arr
  | None ->
      let seen = Hashtbl.create 16 in
      let rec go v =
        if is_switch t v && not (Hashtbl.mem seen v) then begin
          Hashtbl.replace seen v ();
          List.iter go t.children_adj.(v)
        end
      in
      go id;
      let arr = Array.of_list (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])) in
      Hashtbl.replace t.switches_under_cache id arr;
      arr

(* The ToR "address" of a node when it has one: servers and ToRs map to a
   concrete ToR id; aggs and cores do not. *)
let tor_address t id =
  match kind t id with
  | Server -> Some t.tor_of.(id)
  | Tor -> Some id
  | Agg | Core -> None

let lca_depth t a b =
  let na = node t a and nb = node t b in
  if a = b then na.depth
  else if na.kind = Core || nb.kind = Core then 0
  else if na.pod <> nb.pod then 0
  else begin
    (* Same pod, neither core. *)
    match (na.kind, nb.kind) with
    | Agg, Agg -> 0 (* no single agg subtree holds two aggs *)
    | Agg, _ | _, Agg -> 1
    | _ -> (
        match (tor_address t a, tor_address t b) with
        | Some ta, Some tb when ta = tb -> 2
        | _ -> 1)
  end

let cover_depth t nodes =
  match nodes with
  | [] -> invalid_arg "Fat_tree.cover_depth: empty"
  | [ x ] -> depth t x
  | xs ->
      (* Minimum pairwise LCA depth; O(n²) is fine for job-sized sets. *)
      let arr = Array.of_list xs in
      let d = ref 3 in
      Array.iteri
        (fun i x ->
          for j = i + 1 to Array.length arr - 1 do
            let l = lca_depth t x arr.(j) in
            if l < !d then d := l
          done)
        arr;
      !d

let detour t ~servers ~switches =
  match (servers, switches) with
  | [], _ | _, [] -> 0
  | _ ->
      let ds = cover_depth t servers in
      let dall = cover_depth t (servers @ switches) in
      max 0 (ds - dall)

let hop_distance t a b =
  if a = b then 0
  else begin
    let l = lca_depth t a b in
    (* Covering subtree root sits at depth [l]; climbing to it costs
       depth - l hops on each side, except that when one endpoint *is*
       the subtree root (e.g. a ToR and its server) its climb is 0. *)
    let da = depth t a and db = depth t b in
    let climb_a = max 0 (da - l) and climb_b = max 0 (db - l) in
    (* If one node is an ancestor-equivalent of the other (lca depth
       equals its own depth and they share the subtree), distance is just
       the other's climb. *)
    if da = l then climb_b else if db = l then climb_a else climb_a + climb_b
  end

let pp fmt t =
  if Array.length t.agg = 0 then
    Format.fprintf fmt "leaf-spine: %d spines, %d leafs, %d servers" (Array.length t.core)
      (Array.length t.tor) (Array.length t.server_ids)
  else
    Format.fprintf fmt "fat-tree k=%d: %d cores, %d aggs, %d tors, %d servers" t.k
      (Array.length t.core) (Array.length t.agg) (Array.length t.tor)
      (Array.length t.server_ids)
