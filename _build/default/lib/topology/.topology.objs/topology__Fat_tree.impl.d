lib/topology/fat_tree.ml: Array Format Hashtbl List Prelude Printf
