lib/topology/resource.ml: Array Float Prelude
