lib/topology/fat_tree.mli: Format
