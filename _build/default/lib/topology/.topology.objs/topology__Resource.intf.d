lib/topology/resource.mli: Prelude
