(** Small fixed-length float vectors used as multi-dimensional resource
    quantities (demands, capacities, utilizations).

    Vectors are plain [float array]s; all binary operations require equal
    lengths and raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> float -> t
val of_list : float list -> t
val dim : t -> int
val copy : t -> t
val zero : int -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

(** Element-wise (Hadamard) product. *)
val mul : t -> t -> t

(** Element-wise (Hadamard) division, the paper's [⊘]; division by zero
    yields zero in that coordinate (a zero-capacity dimension contributes
    no load). *)
val div : t -> t -> t

(** In-place accumulation: [add_into acc v] adds [v] to [acc]. *)
val add_into : t -> t -> unit

val sub_into : t -> t -> unit

(** [le a b] iff every coordinate of [a] is <= the matching coordinate of
    [b] (with a small epsilon tolerance for float accumulation drift). *)
val le : t -> t -> bool

(** [fits ~demand ~available] = [le demand available]. *)
val fits : demand:t -> available:t -> bool

val avg : t -> float
val stddev : t -> float
val max_coord : t -> float
val dot : t -> t -> float

(** [is_zero v] iff every coordinate is (nearly) zero. *)
val is_zero : t -> bool

val clamp_nonneg : t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
