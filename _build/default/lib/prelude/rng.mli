(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator takes an explicit [Rng.t]
    so that experiments are reproducible from a seed, as in the paper's
    artifact (three seeds per experiment).  The generator is SplitMix64:
    tiny state, good statistical quality, and a well-defined [split] for
    deriving independent streams. *)

type t

(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)
val create : int -> t

(** [split t] returns a new generator statistically independent from the
    future outputs of [t].  [t] itself advances. *)
val split : t -> t

(** [copy t] duplicates the current state (both copies then produce the
    same stream). *)
val copy : t -> t

(** [int t bound] draws a uniform integer in [\[0, bound)].  [bound] must
    be positive. *)
val int : t -> int -> int

(** [int_in t lo hi] draws a uniform integer in [\[lo, hi\]] (inclusive). *)
val int_in : t -> int -> int -> int

(** [float t bound] draws a uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** [float_in t lo hi] draws a uniform float in [\[lo, hi)]. *)
val float_in : t -> float -> float -> float

(** [bool t] draws a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [exponential t ~mean] draws from an exponential distribution. *)
val exponential : t -> mean:float -> float

(** [log_normal t ~mu ~sigma] draws from a log-normal distribution with
    the given parameters of the underlying normal. *)
val log_normal : t -> mu:float -> sigma:float -> float

(** [normal t ~mu ~sigma] draws from a normal distribution
    (Box–Muller). *)
val normal : t -> mu:float -> sigma:float -> float

(** [pareto t ~scale ~shape] draws from a Pareto distribution with the
    given minimum value [scale] and tail index [shape]. *)
val pareto : t -> scale:float -> shape:float -> float

(** [choose t arr] picks a uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** [shuffle t arr] shuffles [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [sample_without_replacement t ~n arr] returns [min n (length arr)]
    distinct elements drawn uniformly from [arr]. *)
val sample_without_replacement : t -> n:int -> 'a array -> 'a list

(** [weighted_choice t items] picks an element with probability
    proportional to its non-negative weight.  The total weight must be
    positive. *)
val weighted_choice : t -> (float * 'a) list -> 'a
