(** Imperative binary min-heap, parameterised by an ordering.

    Used by the MCMF solver (Dijkstra priority queue) and by the
    discrete-event simulator (pending-event queue). *)

type 'a t

(** [create ~cmp] makes an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> 'a -> unit

(** [pop t] removes and returns the minimum element.
    @raise Not_found when empty. *)
val pop : 'a t -> 'a

(** [peek t] returns the minimum without removing it.
    @raise Not_found when empty. *)
val peek : 'a t -> 'a

val clear : 'a t -> unit

(** [to_list t] returns the elements in unspecified order. *)
val to_list : 'a t -> 'a list
