lib/prelude/stats.mli: Rng
