lib/prelude/vec.mli: Format
