lib/prelude/vec.ml: Array Float Format Printf Stats String
