lib/prelude/rng.mli:
