lib/prelude/heap.mli:
