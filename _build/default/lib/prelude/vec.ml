type t = float array

let eps = 1e-9

let create n x = Array.make n x
let of_list = Array.of_list
let dim = Array.length
let copy = Array.copy
let zero n = Array.make n 0.0

let check_dims a b op =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" op (Array.length a) (Array.length b))

let add a b =
  check_dims a b "add";
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims a b "sub";
  Array.mapi (fun i x -> x -. b.(i)) a

let scale k a = Array.map (fun x -> k *. x) a

let mul a b =
  check_dims a b "mul";
  Array.mapi (fun i x -> x *. b.(i)) a

let div a b =
  check_dims a b "div";
  Array.mapi (fun i x -> if Float.abs b.(i) < eps then 0.0 else x /. b.(i)) a

let add_into acc v =
  check_dims acc v "add_into";
  Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x) v

let sub_into acc v =
  check_dims acc v "sub_into";
  Array.iteri (fun i x -> acc.(i) <- acc.(i) -. x) v

let le a b =
  check_dims a b "le";
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) +. eps then ok := false) a;
  !ok

let fits ~demand ~available = le demand available

let avg v = Stats.mean_arr v
let stddev v = Stats.stddev_arr v
let max_coord v = Array.fold_left Float.max neg_infinity v

let dot a b =
  check_dims a b "dot";
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let is_zero v = Array.for_all (fun x -> Float.abs x < eps) v
let clamp_nonneg v = Array.map (fun x -> Float.max 0.0 x) v

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) < eps) a b

let pp fmt v =
  Format.fprintf fmt "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") v)))

let to_string v = Format.asprintf "%a" pp v
