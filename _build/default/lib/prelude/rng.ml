(* SplitMix64 (Steele, Lea, Flood 2014).  State is a single 64-bit word
   advanced by the golden-gamma; output is a finalizing hash of the state.
   All arithmetic is modular on OCaml's 63-bit ints cast through Int64 to
   keep exact 64-bit semantics. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }

let split t =
  let s = next_int64 t in
  { state = mix s }

let copy t = { state = t.state }

(* Non-negative 62-bit value, uniform. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask_range = (max_int / bound) * bound in
  let rec draw () =
    let v = next_nonneg t in
    if v < mask_range then v mod bound else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits -> uniform in [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let normal t ~mu ~sigma =
  (* Box–Muller; we only use one of the pair for simplicity. *)
  let u1 = 1.0 -. float t 1.0 and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let log_normal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let pareto t ~scale ~shape =
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t ~n arr =
  let len = Array.length arr in
  let n = min n len in
  if n <= 0 then []
  else begin
    let copy = Array.copy arr in
    (* Partial Fisher–Yates: the first [n] slots end up as the sample. *)
    for i = 0 to n - 1 do
      let j = int_in t i (len - 1) in
      let tmp = copy.(i) in
      copy.(i) <- copy.(j);
      copy.(j) <- tmp
    done;
    Array.to_list (Array.sub copy 0 n)
  end

let weighted_choice t items =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 items in
  if total <= 0.0 then invalid_arg "Rng.weighted_choice: total weight must be positive";
  let target = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted_choice: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0.0 items
