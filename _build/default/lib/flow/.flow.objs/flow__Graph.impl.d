lib/flow/graph.ml: Array Format Printf
