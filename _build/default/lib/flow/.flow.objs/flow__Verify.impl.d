lib/flow/verify.ml: Array Format Graph List String
