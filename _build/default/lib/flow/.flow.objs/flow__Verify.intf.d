lib/flow/verify.mli: Format Graph
