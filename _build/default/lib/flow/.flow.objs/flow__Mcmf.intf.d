lib/flow/mcmf.mli: Graph
