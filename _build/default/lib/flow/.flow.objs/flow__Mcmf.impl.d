lib/flow/mcmf.ml: Array Graph Hashtbl List Prelude Queue Unix
