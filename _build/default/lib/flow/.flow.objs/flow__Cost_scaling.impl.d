lib/flow/cost_scaling.ml: Array Graph List Queue Unix
