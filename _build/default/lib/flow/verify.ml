type violation =
  | Capacity_exceeded of Graph.arc
  | Negative_flow of Graph.arc
  | Conservation of int
  | Negative_cycle of int list

let pp_violation fmt = function
  | Capacity_exceeded a -> Format.fprintf fmt "capacity exceeded on arc %d" a
  | Negative_flow a -> Format.fprintf fmt "negative flow on arc %d" a
  | Conservation v -> Format.fprintf fmt "flow not conserved at node %d" v
  | Negative_cycle vs ->
      Format.fprintf fmt "negative residual cycle: %s"
        (String.concat " -> " (List.map string_of_int vs))

let check_bounds g =
  let bad = ref None in
  Graph.iter_arcs g (fun a ->
      if !bad = None then begin
        let f = Graph.flow g a in
        if f > Graph.capacity g a then bad := Some (Capacity_exceeded a)
        else if f < 0 then bad := Some (Negative_flow a)
      end);
  match !bad with None -> Ok () | Some v -> Error v

let check_conservation g =
  let n = Graph.node_count g in
  let balance = Array.make n 0 in
  Graph.iter_arcs g (fun a ->
      let f = Graph.flow g a in
      balance.(Graph.src g a) <- balance.(Graph.src g a) + f;
      balance.(Graph.dst g a) <- balance.(Graph.dst g a) - f);
  let bad = ref None in
  for v = 0 to n - 1 do
    if !bad = None then begin
      let s = Graph.supply g v in
      let b = balance.(v) in
      let ok =
        if s > 0 then b >= 0 && b <= s (* source: may be partially shipped *)
        else if s < 0 then b <= 0 && b >= s (* demand: may be partially filled *)
        else b = 0
      in
      if not ok then bad := Some (Conservation v)
    end
  done;
  match !bad with None -> Ok () | Some v -> Error v

(* Bellman–Ford negative-cycle detection over the residual network.  A
   flow is min-cost for its value iff the residual network has no
   negative-cost cycle (Klein's optimality criterion). *)
let optimal g =
  let n = Graph.node_count g in
  if n = 0 then Ok ()
  else begin
    let dist = Array.make n 0 in
    let parent_arc = Array.make n (-1) in
    let updated_node = ref (-1) in
    for _round = 1 to n do
      updated_node := -1;
      for v = 0 to n - 1 do
        Graph.iter_out g v (fun a ->
            if Graph.residual_cap g a > 0 then begin
              let u = Graph.dst g a in
              let nd = dist.(v) + Graph.cost g a in
              if nd < dist.(u) then begin
                dist.(u) <- nd;
                parent_arc.(u) <- a;
                updated_node := u
              end
            end)
      done
    done;
    if !updated_node < 0 then Ok ()
    else begin
      (* Walk parents n times to land inside the cycle, then collect it. *)
      let v = ref !updated_node in
      for _ = 1 to n do
        if parent_arc.(!v) >= 0 then v := Graph.src g parent_arc.(!v)
      done;
      let start = !v in
      let cycle = ref [ start ] in
      let cur = ref (Graph.src g parent_arc.(start)) in
      while !cur <> start && List.length !cycle <= n do
        cycle := !cur :: !cycle;
        cur := Graph.src g parent_arc.(!cur)
      done;
      Error (Negative_cycle !cycle)
    end
  end

let check g =
  match check_bounds g with
  | Error _ as e -> e
  | Ok () -> (
      match check_conservation g with
      | Error _ as e -> e
      | Ok () -> optimal g)
