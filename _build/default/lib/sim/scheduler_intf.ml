(** The scheduler interface the simulator drives.

    Schedulers are first-class records so the simulation engine does not
    depend on any concrete policy.  A scheduler {e charges the cluster
    ledgers itself} while deciding (so intra-round feasibility is exact)
    and reports the placements; the simulator schedules the matching
    completions, releases resources when tasks finish, and feeds the
    metrics. *)

type placement = {
  tg : Hire.Poly_req.task_group;
  machine : int;  (** server id for server groups, switch id for network groups *)
  shared : bool;  (** whether switch placement may exploit INC sharing *)
  charged : Prelude.Vec.t option;
      (** switch-side demand charged (network groups only) *)
}

type round_result = {
  placements : placement list;
  cancelled : Hire.Poly_req.task_group list;
  think : float;  (** simulated decision time of this round, seconds *)
  solver_wall : float option;  (** measured MCMF wall time (flow-based only) *)
}

type t = {
  name : string;
  submit : time:float -> Hire.Poly_req.t -> unit;
  round : time:float -> round_result;
  pending : unit -> bool;  (** unfinished placement work remains *)
  on_task_complete : time:float -> tg:Hire.Poly_req.task_group -> machine:int -> unit;
}
