(** Time-ordered event queue for the discrete-event simulator.  Events
    with equal timestamps are delivered in insertion order (a strict
    total order keeps simulations deterministic). *)

type 'a t

val create : unit -> 'a t

(** [push q ~time ev] schedules [ev]; [time] must be finite. *)
val push : 'a t -> time:float -> 'a -> unit

(** Earliest event with its timestamp, removing it. *)
val pop : 'a t -> (float * 'a) option

(** Earliest timestamp without removing. *)
val peek_time : 'a t -> float option

val is_empty : 'a t -> bool
val size : 'a t -> int
