lib/sim/scenario.mli: Hire Prelude Workload
