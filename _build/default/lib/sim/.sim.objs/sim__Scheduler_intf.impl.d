lib/sim/scheduler_intf.ml: Hire Prelude
