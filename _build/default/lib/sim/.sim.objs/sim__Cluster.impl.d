lib/sim/cluster.ml: Array Float Hashtbl Hire List Prelude Printf Topology
