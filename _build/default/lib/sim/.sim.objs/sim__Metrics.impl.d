lib/sim/metrics.ml: Array Float Format Hashtbl Hire List Prelude Topology
