lib/sim/simulator.mli: Cluster Hire Metrics Scheduler_intf
