lib/sim/cluster.mli: Hire Prelude Topology
