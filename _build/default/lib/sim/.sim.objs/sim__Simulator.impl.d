lib/sim/simulator.ml: Cluster Event_queue Float Hashtbl Hire List Metrics Prelude Scheduler_intf
