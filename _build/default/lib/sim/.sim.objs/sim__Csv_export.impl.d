lib/sim/csv_export.ml: Array Cluster Fun List Metrics Prelude Printf String
