lib/sim/scenario.ml: Array Hire List Prelude Workload
