lib/sim/csv_export.mli: Cluster Metrics
