lib/sim/event_queue.ml: Float Prelude
