lib/sim/metrics.mli: Format Hire Prelude Topology
