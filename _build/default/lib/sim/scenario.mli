(** Experiment scenario assembly: turn a raw workload trace into the
    PolyReq stream of the paper's methodology (§6.2).

    To reach a target INC ratio μ, jobs are selected randomly; for up to
    a third of a selected job's task groups (at least one) a random
    CompStore INC composite is attached as a runtime alternative.  The
    resulting CompReqs are transformed into PolyReqs with a shared
    task-group id generator. *)

type t = {
  arrivals : (float * Hire.Poly_req.t) list;  (** sorted by time *)
  store : Hire.Comp_store.t;
}

(** [build store rng ~mu jobs] augments and transforms a trace.
    Requires [0 <= mu <= 1]. *)
val build :
  Hire.Comp_store.t -> Prelude.Rng.t -> mu:float -> Workload.Job.t list -> t

(** Fraction of PolyReqs that request INC (sanity check against μ). *)
val inc_fraction : t -> float
