module Rng = Prelude.Rng
module Comp_req = Hire.Comp_req
module Comp_store = Hire.Comp_store
module Transformer = Hire.Transformer

type t = { arrivals : (float * Hire.Poly_req.t) list; store : Comp_store.t }

(* Attach a random INC alternative to up to a third of a job's composites
   (at least one), rewriting the composite onto the template that lists
   the chosen service. *)
let augment store rng (req : Comp_req.t) =
  let services = Comp_store.service_names store in
  if Array.length services = 0 then req
  else begin
    let comps = Array.of_list req.composites in
    let n = Array.length comps in
    (* "Up to a third" of the job's task groups get an INC alternative,
       at least one (§6.2). *)
    let n_inc = Rng.int_in rng 1 (max 1 ((n + 2) / 3)) in
    let idxs = Rng.sample_without_replacement rng ~n:n_inc (Array.init n (fun i -> i)) in
    List.iter
      (fun i ->
        let service = Rng.choose rng services in
        match Comp_store.template_of_service store service with
        | None -> ()
        | Some template ->
            let c = comps.(i) in
            comps.(i) <-
              { c with Comp_req.template; inc_alternatives = [ service ] })
      idxs;
    { req with composites = Array.to_list comps }
  end

let build store rng ~mu jobs =
  if mu < 0.0 || mu > 1.0 then invalid_arg "Scenario.build: mu must be in [0,1]";
  let ids = Transformer.Id_gen.create () in
  let arrivals =
    List.map
      (fun (job : Workload.Job.t) ->
        let req = Comp_req.of_job job in
        let req = if Rng.bernoulli rng mu then augment store rng req else req in
        let poly =
          Transformer.transform store ids rng ~job_id:job.id ~arrival:job.arrival req
        in
        (job.arrival, poly))
      jobs
  in
  { arrivals; store }

let inc_fraction t =
  match t.arrivals with
  | [] -> 0.0
  | l ->
      let inc = List.length (List.filter (fun (_, p) -> Hire.Poly_req.has_inc p) l) in
      float_of_int inc /. float_of_int (List.length l)
