(** CSV export of metric reports, mirroring the paper artifact's
    per-simulation stats files: one row per ⟨scheduler, μ, setup, seed⟩
    cell so the sweep can be re-plotted outside OCaml. *)

val header : string

(** [row ~scheduler ~mu ~setup ~seed report] renders one CSV line
    (no trailing newline). *)
val row :
  scheduler:string ->
  mu:float ->
  setup:Cluster.inc_setup ->
  seed:int ->
  Metrics.report ->
  string

(** [write_file path rows] writes header + rows. *)
val write_file : string -> string list -> unit
