(* Command-line runner for a single experiment cell of the paper's sweep
   (one ⟨scheduler, μ, switch setup⟩ on a fat-tree cluster), mirroring
   the artifact's runner tool.  Prints the metric summary the figures are
   built from; see bench/main.ml for the full sweep. *)

let run scheduler mu k horizon seeds setup util fraction verbose csv =
  let setup =
    match setup with
    | "homogeneous" | "homog" -> Sim.Cluster.Homogeneous
    | "heterogeneous" | "het" -> Sim.Cluster.Heterogeneous
    | other -> failwith (Printf.sprintf "unknown setup %S (homogeneous|heterogeneous)" other)
  in
  if not (List.mem scheduler Schedulers.Registry.names) then
    failwith
      (Printf.sprintf "unknown scheduler %S (known: %s)" scheduler
         (String.concat ", " Schedulers.Registry.names));
  let spec =
    {
      Harness.Experiment.scheduler;
      mu;
      setup;
      k;
      horizon;
      seed = 1;
      target_utilization = util;
      inc_capable_fraction = fraction;
    }
  in
  Printf.printf "scheduler=%s mu=%.2f k=%d horizon=%.0fs setup=%s util=%.2f seeds=[%s]\n%!"
    scheduler mu k horizon
    (Sim.Cluster.inc_setup_to_string setup)
    util
    (String.concat ";" (List.map string_of_int seeds));
  let reports = Harness.Experiment.run_seeds spec seeds in
  List.iteri
    (fun i r ->
      Printf.printf "seed %d: %s\n" (List.nth seeds i)
        (Format.asprintf "%a" Sim.Metrics.pp_report r);
      if verbose then begin
        let lats = r.Sim.Metrics.placement_latencies in
        if lats <> [] then begin
          Printf.printf "  placement latency: ";
          List.iter
            (fun (p, v) -> Printf.printf "p%.0f=%.3fs " p v)
            (Prelude.Stats.percentiles [ 50.0; 90.0; 99.0 ] lats);
          print_newline ()
        end;
        if r.Sim.Metrics.solver_samples <> [] then
          Printf.printf "  solver: %d solves, median %.3f ms\n"
            (List.length r.Sim.Metrics.solver_samples)
            (1000.0 *. Prelude.Stats.percentile 50.0 r.Sim.Metrics.solver_samples)
      end)
    reports;
  (match csv with
  | None -> ()
  | Some path ->
      let rows =
        List.map2
          (fun seed r ->
            Sim.Csv_export.row ~scheduler ~mu ~setup ~seed r)
          seeds reports
      in
      Sim.Csv_export.write_file path rows;
      Printf.printf "per-seed rows written to %s\n" path);
  let mean f = Harness.Experiment.mean_over f reports in
  Printf.printf
    "mean over %d seed(s): satisfied-INC=%.3f unserved-INC-TGs=%.3f detour=%.3f\n"
    (List.length reports)
    (mean Sim.Metrics.inc_satisfaction_ratio)
    (mean Sim.Metrics.inc_tg_unserved_ratio)
    (mean (fun r -> r.Sim.Metrics.detour_mean))

open Cmdliner

let scheduler =
  let doc =
    "Scheduler to run: " ^ String.concat ", " Schedulers.Registry.names ^ "."
  in
  Arg.(value & opt string "hire" & info [ "scheduler"; "s" ] ~docv:"NAME" ~doc)

let mu =
  let doc = "Target ratio of jobs requesting INC resources (the paper's sweep axis)." in
  Arg.(value & opt float 1.0 & info [ "mu" ] ~docv:"RATIO" ~doc)

let k =
  let doc = "Fat-tree arity (k=26 is the paper's 4394-server testbed)." in
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)

let horizon =
  let doc = "Trace length in simulated seconds." in
  Arg.(value & opt float 400.0 & info [ "horizon" ] ~docv:"SECONDS" ~doc)

let seeds =
  let doc = "Seeds to run (the paper uses three per cell)." in
  Arg.(value & opt (list int) [ 1; 2; 3 ] & info [ "seeds" ] ~docv:"INTS" ~doc)

let setup =
  let doc = "Switch capability setup: homogeneous or heterogeneous (2 services/switch)." in
  Arg.(value & opt string "homogeneous" & info [ "setup" ] ~docv:"SETUP" ~doc)

let util =
  let doc = "Offered CPU load of the generated trace." in
  Arg.(value & opt float 0.8 & info [ "util" ] ~docv:"FRACTION" ~doc)

let fraction =
  let doc =
    "Fraction of switches that are INC-capable (default: k/26, keeping the paper's \
     servers-per-INC-switch ratio)."
  in
  Arg.(value & opt (some float) None & info [ "inc-capable" ] ~docv:"FRACTION" ~doc)

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print per-seed latency and solver stats.")

let csv =
  let doc = "Also write per-seed metric rows to $(docv) (the artifact's stats-file spirit)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "run one HIRE-reproduction scheduling experiment" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays a synthetic Alibaba-like trace against a fat-tree cluster with \
         INC-capable switches and reports the paper's metrics (satisfied INC jobs, \
         unallocated INC task groups, switch detours, switch load, placement latency). \
         See bench/main.exe for the full figure sweep.";
    ]
  in
  Cmd.v
    (Cmd.info "hire_sim" ~version:"1.0" ~doc ~man)
    Term.(
      const run $ scheduler $ mu $ k $ horizon $ seeds $ setup $ util $ fraction $ verbose
      $ csv)

let () = exit (Cmd.eval cmd)
