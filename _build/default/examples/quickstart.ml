(* Quickstart: submit one INC-enabled job to HIRE and watch it being
   scheduled.

     dune exec examples/quickstart.exe

   Walks the full pipeline of the paper's Fig. 3: CompReq (tenant API) →
   model transformer → PolyReq → flow-network scheduling rounds →
   placements on servers and switches. *)

module Comp_store = Hire.Comp_store
module Comp_req = Hire.Comp_req
module Poly_req = Hire.Poly_req
module Rng = Prelude.Rng

let () =
  (* 1. A small data center: k=4 fat tree (16 servers, 20 switches), all
     switches INC-capable and supporting every CompStore service. *)
  let store = Comp_store.default () in
  let cluster =
    Sim.Cluster.create ~inc_capable_fraction:1.0 ~k:4 ~setup:Sim.Cluster.Homogeneous
      ~services:(Array.to_list (Comp_store.service_names store))
      (Rng.create 1)
  in
  Format.printf "cluster: %a, %d INC-capable switches@."
    Topology.Fat_tree.pp (Sim.Cluster.topo cluster)
    (Sim.Cluster.n_inc_capable cluster);

  (* 2. A composite request (cf. List. 1 of the paper): six coordination
     servers that may instead be served by a NetChain switch chain. *)
  let req =
    {
      Comp_req.priority = Workload.Job.Service;
      composites =
        [
          {
            Comp_req.comp_id = "c4";
            template = "server";
            base = { Comp_req.instances = 12; cpu = 16.0; mem = 8.5; duration = 120.0 };
            inc_alternatives = [];
          };
          {
            Comp_req.comp_id = "c5";
            template = "coordinator";
            base = { Comp_req.instances = 6; cpu = 16.0; mem = 32.0; duration = 120.0 };
            inc_alternatives = [ "netchain" ];
          };
        ];
      connections = [ ("c4", "c5") ];
    }
  in
  (match Comp_req.validate store req with
  | Ok () -> Format.printf "CompReq validates: %a@." Comp_req.pp req
  | Error e -> failwith e);

  (* 3. Transform to a PolyReq: alternatives become flavor-exclusive task
     groups; NetChain expands to a chain of switches. *)
  let ids = Hire.Transformer.Id_gen.create () in
  let poly = Hire.Transformer.transform store ids (Rng.create 2) ~job_id:0 ~arrival:0.0 req in
  Format.printf "@.%a@." Poly_req.pp poly;

  (* 4. Drive HIRE scheduling rounds, applying placements to the cluster
     ledgers (this is what the simulator does automatically). *)
  let sched = Hire.Hire_scheduler.create (Sim.Cluster.view cluster) in
  Hire.Hire_scheduler.submit sched ~time:0.0 poly;
  let time = ref 0.0 in
  while Hire.Hire_scheduler.pending_work sched && !time < 10.0 do
    time := !time +. 0.25;
    let o = Hire.Hire_scheduler.run_round sched ~time:!time in
    List.iter
      (fun (job_id, inc) ->
        Format.printf "t=%.2fs  flavor decision: job %d -> %s@." !time job_id
          (if inc then "IN-NETWORK variant" else "server variant"))
      o.flavor_decisions;
    List.iter
      (fun ((tg : Poly_req.task_group), machine) ->
        (match tg.kind with
        | Poly_req.Server_tg ->
            Sim.Cluster.place_server_task cluster ~server:machine ~demand:tg.demand
        | Poly_req.Network_tg _ ->
            ignore (Sim.Cluster.place_network_task cluster ~switch:machine ~tg ~shared:true));
        Format.printf "t=%.2fs  task of %s/%s -> %s %d@." !time tg.comp_id
          (match Poly_req.service_of tg with Some s -> s | None -> "server")
          (if Poly_req.is_network tg then "switch" else "server")
          machine)
      o.placements
  done;

  Format.printf "@.final switch usage: %a@." Prelude.Vec.pp
    (Sim.Cluster.switch_used_total cluster);
  Format.printf "done: the coordinator runs %s@."
    (if Prelude.Vec.is_zero (Sim.Cluster.switch_used_total cluster) then
       "on servers (fallback)"
     else "in the network (NetChain)")
