(* The paper's running example (Fig. 2 left / Fig. 4): a web application
   with a load balancer, web tier, cache, DB tier, and a coordinator —
   where the load balancer (R2P2), the cache (NetCache or DistCache), and
   the coordinator (NetChain) can be served in-network.

     dune exec examples/web_application.exe

   Submits several tenants' instances of this application to a shared
   cluster and reports which composites ended up in the network, the
   resulting switch co-location (sharing), and the detour metric. *)

module Comp_store = Hire.Comp_store
module Comp_req = Hire.Comp_req
module Poly_req = Hire.Poly_req
module Rng = Prelude.Rng

let web_app_req tenant =
  let c id template ?(inc = []) instances cpu mem =
    {
      Comp_req.comp_id = Printf.sprintf "%s-%s" tenant id;
      template;
      base = { Comp_req.instances; cpu; mem; duration = 300.0 };
      inc_alternatives = inc;
    }
  in
  let lb = c "lb" "load-balancer" ~inc:[ "r2p2" ] 2 4.0 8.0 in
  let web = c "web" "server" 8 8.0 16.0 in
  let cache = c "cache" "cache" ~inc:[ "netcache"; "distcache" ] 4 8.0 24.0 in
  let db = c "db" "server" 6 16.0 48.0 in
  let coord = c "coord" "coordinator" ~inc:[ "netchain" ] 3 4.0 8.0 in
  {
    Comp_req.priority = Workload.Job.Service;
    composites = [ lb; web; cache; db; coord ];
    connections =
      [
        (lb.Comp_req.comp_id, web.Comp_req.comp_id);
        (web.Comp_req.comp_id, cache.Comp_req.comp_id);
        (cache.Comp_req.comp_id, db.Comp_req.comp_id);
        (db.Comp_req.comp_id, coord.Comp_req.comp_id);
      ];
  }

let () =
  let store = Comp_store.default () in
  let cluster =
    Sim.Cluster.create ~inc_capable_fraction:1.0 ~k:6 ~setup:Sim.Cluster.Homogeneous
      ~services:(Array.to_list (Comp_store.service_names store))
      (Rng.create 7)
  in
  let ids = Hire.Transformer.Id_gen.create () in
  let rng = Rng.create 8 in
  let tenants = [ "alice"; "bob"; "carol" ] in
  let arrivals =
    List.mapi
      (fun i tenant ->
        let req = web_app_req tenant in
        (match Comp_req.validate store req with Ok () -> () | Error e -> failwith e);
        let arrival = float_of_int i *. 0.5 in
        (arrival, Hire.Transformer.transform store ids rng ~job_id:i ~arrival req))
      tenants
  in
  Format.printf "submitting %d tenants' web applications (%d task groups each)@."
    (List.length tenants)
    (List.length (snd (List.hd arrivals)).Poly_req.task_groups);

  let sched = Schedulers.Registry.create "hire" ~seed:1 cluster in
  let result = Sim.Simulator.run cluster sched arrivals in
  let r = result.Sim.Simulator.report in
  Format.printf "@.%a@." Sim.Metrics.pp_report r;
  Format.printf "INC-served tenants: %d/%d, mean detour %.2f levels@."
    r.Sim.Metrics.inc_jobs_served r.Sim.Metrics.inc_jobs_total r.Sim.Metrics.detour_mean;

  (* Show co-location: which switches run which INC services.  Sharing
     ([nol]) means tenants on the same switch amortize the registered
     stages of a common service. *)
  Format.printf "@.switch co-location after the run:@.";
  let sharing = Sim.Cluster.sharing cluster in
  Array.iter
    (fun s ->
      match Hire.Sharing.active_services sharing s with
      | [] -> ()
      | active ->
          Format.printf "  switch %3d: %s@." s
            (String.concat ", "
               (List.map
                  (fun svc ->
                    Printf.sprintf "%s x%d" svc (Hire.Sharing.instances sharing ~switch:s ~service:svc))
                  active)))
    (Hire.Sharing.switch_ids sharing);
  if Prelude.Vec.is_zero (Sim.Cluster.switch_used_total cluster) then
    Format.printf "  (all jobs completed; switch resources released)@."
