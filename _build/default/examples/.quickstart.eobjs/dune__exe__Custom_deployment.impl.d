examples/custom_deployment.ml: Array Format Hire List Prelude Printf Schedulers Sim String Topology Workload
