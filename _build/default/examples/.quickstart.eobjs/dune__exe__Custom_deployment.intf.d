examples/custom_deployment.mli:
