examples/web_application.mli:
