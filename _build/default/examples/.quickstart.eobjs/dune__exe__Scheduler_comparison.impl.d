examples/scheduler_comparison.ml: Format Harness List Prelude Sim
