examples/ml_training.mli:
