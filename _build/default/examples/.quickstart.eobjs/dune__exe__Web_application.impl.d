examples/web_application.ml: Array Format Hire List Prelude Printf Schedulers Sim String Workload
