examples/ml_training.ml: Array Format Hire List Prelude Schedulers Sim Workload
