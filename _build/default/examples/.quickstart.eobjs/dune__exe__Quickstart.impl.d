examples/quickstart.ml: Array Format Hire List Prelude Sim Topology Workload
