examples/quickstart.mli:
