(* Extension-surface tour: everything the paper's §4.5 promises to be
   extensible, in one runnable scenario —

   - a two-tier leaf–spine fabric instead of the fat tree;
   - a tenant-registered custom P4 service (Fig. 4a's "Custom P4"
     template) next to the stock catalogue;
   - requests assembled with the List. 1-style [Hire.Api];
   - the exact replayed trace exported/re-imported through
     [Workload.Trace_io];
   - gang semantics turned on in the simulator (§5.1: no partial jobs).

     dune exec examples/custom_deployment.exe *)

module Comp_store = Hire.Comp_store
module Rng = Prelude.Rng

let () =
  (* A CompStore with the Tab. 3 catalogue plus our own P4_16 program. *)
  let store = Comp_store.default () in
  let telemetry =
    Comp_store.custom_p4 ~name:"flow-telemetry" ~version:`P4_16 ~switches:2 ~recirc:4.0
      ~stages:5.0 ~sram_mb:1.0 ~shared_stages:3.0 ()
  in
  Comp_store.register_custom_p4 store telemetry;
  Format.printf "CompStore now provides: %s@."
    (String.concat ", " (Array.to_list (Comp_store.service_names store)));

  (* Leaf-spine fabric: 4 spines, 8 leafs, 6 servers per leaf. *)
  let topology = Topology.Fat_tree.create_leaf_spine ~spines:4 ~leafs:8 ~servers_per_leaf:6 in
  let cluster =
    Sim.Cluster.create ~topology ~inc_capable_fraction:1.0 ~k:0
      ~setup:Sim.Cluster.Homogeneous
      ~services:(Array.to_list (Comp_store.service_names store))
      (Rng.create 5)
  in
  Format.printf "fabric: %a@." Topology.Fat_tree.pp topology;

  (* Tenant requests via the List. 1-style API. *)
  let open Hire.Api in
  let mk_job i =
    let workers =
      server ~id:(Printf.sprintf "workers-%d" i) ~instances:8 ~cpu:8.0 ~mem:16.0
        ~duration:60.0
    in
    let monitor =
      server ~id:(Printf.sprintf "monitor-%d" i) ~instances:2 ~cpu:2.0 ~mem:4.0
        ~duration:60.0
      |> with_alternative store ~service:"flow-telemetry"
    in
    request_exn store ~priority:Batch [ workers; monitor ]
      ~connections:[ connect workers monitor ]
  in
  let ids = Hire.Transformer.Id_gen.create () in
  let rng = Rng.create 6 in
  let arrivals =
    List.init 5 (fun i ->
        let arrival = float_of_int i in
        (arrival, Hire.Transformer.transform store ids rng ~job_id:i ~arrival (mk_job i)))
  in

  (* Round-trip the replayed workload through the trace CSV format, as a
     user replaying a real (pre-processed) trace would. *)
  let as_jobs =
    List.map
      (fun (arrival, poly) ->
        {
          Workload.Job.id = poly.Hire.Poly_req.job_id;
          arrival;
          priority = poly.Hire.Poly_req.priority;
          groups =
            List.filter_map
              (fun (tg : Hire.Poly_req.task_group) ->
                if Hire.Poly_req.is_network tg then None
                else
                  Some
                    {
                      Workload.Job.tg_index = tg.tg_id;
                      count = tg.count;
                      cpu = tg.demand.(0);
                      mem = tg.demand.(1);
                      duration = tg.duration;
                    })
              poly.Hire.Poly_req.task_groups;
        })
      arrivals
  in
  (match Workload.Trace_io.of_csv (Workload.Trace_io.to_csv as_jobs) with
  | Ok parsed -> Format.printf "trace CSV round-trip: %d jobs ok@." (List.length parsed)
  | Error e -> failwith e);

  (* Run with gang semantics. *)
  let sched = Schedulers.Registry.create "hire" ~seed:9 cluster in
  let config = { Sim.Simulator.default_config with gang = true } in
  let result = Sim.Simulator.run ~config cluster sched arrivals in
  let r = result.Sim.Simulator.report in
  Format.printf "@.%a@." Sim.Metrics.pp_report r;
  Format.printf "custom P4 service served in-network for %d/%d jobs (gang mode)@."
    r.Sim.Metrics.inc_jobs_served r.Sim.Metrics.inc_jobs_total
