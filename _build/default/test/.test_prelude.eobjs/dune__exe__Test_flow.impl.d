test/test_flow.ml: Alcotest Array Flow List Prelude QCheck QCheck_alcotest
