test/test_hire_model.ml: Alcotest Array Builder Float Gen Hire List Option Prelude Printf QCheck QCheck_alcotest Result Topology Workload
