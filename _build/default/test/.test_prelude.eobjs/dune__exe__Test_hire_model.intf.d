test/test_hire_model.mli:
