test/test_properties.ml: Alcotest Array Flow Hashtbl Hire List Option Prelude Printf QCheck QCheck_alcotest Schedulers Sim Topology Workload
