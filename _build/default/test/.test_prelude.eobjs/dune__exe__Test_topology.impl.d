test/test_topology.ml: Alcotest Array Gen Hire List Prelude Printf QCheck QCheck_alcotest Schedulers Sim Topology Workload
