test/test_workload.ml: Alcotest Filename Fun List Prelude Printf Result Sys Workload
