test/test_prelude.ml: Alcotest Array Gen Heap List Prelude QCheck QCheck_alcotest Rng Stats Vec
