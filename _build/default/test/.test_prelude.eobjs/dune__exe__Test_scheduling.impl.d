test/test_scheduling.ml: Alcotest Array Filename Float Flow Fun Harness Hire List Option Prelude Printf Schedulers Sim String Sys Topology Workload
