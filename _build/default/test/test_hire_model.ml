(* Tests for the HIRE resource model: flavor vectors, the CompStore
   catalogue, CompReq validation, the model transformer, non-linear
   sharing, locality, and the cost model. *)

module Flavor = Hire.Flavor
module Comp_store = Hire.Comp_store
module Comp_req = Hire.Comp_req
module Poly_req = Hire.Poly_req
module Transformer = Hire.Transformer
module Sharing = Hire.Sharing
module Locality = Hire.Locality
module Cost_model = Hire.Cost_model
module Pending = Hire.Pending
module Vec = Prelude.Vec
module Rng = Prelude.Rng
module Fat_tree = Topology.Fat_tree

let store = Comp_store.default ()

(* ------------------------------------------------------------------ *)
(* Flavor                                                             *)
(* ------------------------------------------------------------------ *)

let test_flavor_status () =
  let open Flavor in
  let f = of_bits [ One; Zero; X ] in
  Alcotest.(check bool) "undecided vs all-x" true (status ~active:(all_x 3) f = Undecided);
  let active = of_bits [ One; Zero; X ] in
  Alcotest.(check bool) "materialized" true (status ~active f = Materialized);
  let active = of_bits [ Zero; One; X ] in
  Alcotest.(check bool) "dropped" true (status ~active f = Dropped)

let test_flavor_apply () =
  let open Flavor in
  let active = apply ~active:(all_x 3) (of_bits [ One; Zero; X ]) in
  Alcotest.(check bool) "applied" true (equal active (of_bits [ One; Zero; X ]));
  Alcotest.(check bool) "contradiction raises" true
    (try
       ignore (apply ~active (of_bits [ Zero; X; X ]));
       false
     with Invalid_argument _ -> true)

let test_flavor_compatible () =
  let open Flavor in
  Alcotest.(check bool) "compatible" true
    (compatible (of_bits [ One; X ]) (of_bits [ X; Zero ]));
  Alcotest.(check bool) "incompatible" false
    (compatible (of_bits [ One; X ]) (of_bits [ Zero; X ]))

let test_flavor_builder () =
  let open Flavor in
  let b = Builder.create () in
  let frags = Builder.alternatives b 2 in
  Alcotest.(check int) "two coordinates" 2 (Builder.size b);
  let f0 = Builder.finalize b frags.(0) and f1 = Builder.finalize b frags.(1) in
  Alcotest.(check bool) "one-hot 0" true (equal f0 (of_bits [ One; Zero ]));
  Alcotest.(check bool) "one-hot 1" true (equal f1 (of_bits [ Zero; One ]));
  Alcotest.(check bool) "variants exclusive" false (compatible f0 f1)

let prop_flavor_apply_monotone =
  (* Applying a fragment can never flip a decided coordinate. *)
  QCheck.Test.make ~name:"apply only fills x coordinates" ~count:200
    QCheck.(list_of_size (Gen.return 6) (int_range 0 2))
    (fun bits ->
      let of_int = function 0 -> Flavor.Zero | 1 -> Flavor.One | _ -> Flavor.X in
      let f = Flavor.of_bits (List.map of_int bits) in
      let active = Flavor.all_x 6 in
      let applied = Flavor.apply ~active f in
      Flavor.status ~active:applied f = Flavor.Materialized)

(* ------------------------------------------------------------------ *)
(* CompStore                                                          *)
(* ------------------------------------------------------------------ *)

let test_store_has_paper_catalogue () =
  let expected =
    [ "sharp"; "incbricks"; "netcache"; "distcache"; "netchain"; "harmonia"; "hovercraft"; "r2p2" ]
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (Comp_store.find_service store name <> None))
    expected;
  Alcotest.(check int) "8 services" 8 (List.length (Comp_store.services store))

let test_store_switch_counts () =
  let svc = Comp_store.service_exn store in
  (* Tab. 3 formulas. *)
  Alcotest.(check int) "sharp log2" 5 ((svc "sharp").switch_count ~group_size:32);
  Alcotest.(check int) "netcache min 3" 3 ((svc "netcache").switch_count ~group_size:4);
  Alcotest.(check int) "netcache log2" 7 ((svc "netcache").switch_count ~group_size:100);
  Alcotest.(check int) "netchain min 3" 3 ((svc "netchain").switch_count ~group_size:100);
  Alcotest.(check int) "netchain scales" 6 ((svc "netchain").switch_count ~group_size:2000);
  Alcotest.(check int) "harmonia tiny" 1 ((svc "harmonia").switch_count ~group_size:100);
  Alcotest.(check int) "harmonia big" 2 ((svc "harmonia").switch_count ~group_size:10_000)

let test_store_netcache_registration () =
  (* NetCache: 8 shared stages per switch (Tab. 3). *)
  let nc = Comp_store.service_exn store "netcache" in
  Alcotest.(check (float 1e-9)) "8 stages" 8.0
    nc.per_switch.(Topology.Resource.Switch.stages);
  let sh = Comp_store.sharable_dims nc in
  Alcotest.(check bool) "stages sharable" true sh.(Topology.Resource.Switch.stages);
  Alcotest.(check bool) "sram not sharable" false sh.(Topology.Resource.Switch.sram)

let test_store_demand_draw_in_range () =
  let rng = Rng.create 5 in
  List.iter
    (fun svc ->
      for _ = 1 to 50 do
        let d = Comp_store.draw_instance_demand svc rng ~group_size:20 in
        let lo, hi = svc.Comp_store.per_instance_range ~group_size:20 in
        Array.iteri
          (fun i x ->
            Alcotest.(check bool)
              (Printf.sprintf "%s dim %d in range" svc.Comp_store.name i)
              true
              (x >= lo.(i) -. 1e-9 && x <= Float.max lo.(i) hi.(i) +. 1e-9))
          d
      done)
    (Comp_store.services store)

let test_store_templates () =
  Alcotest.(check bool) "coordinator has netchain" true
    (List.mem "netchain" (Comp_store.template_exn store "coordinator").inc_impls);
  Alcotest.(check (option string)) "template of sharp" (Some "aggregator")
    (Comp_store.template_of_service store "sharp");
  Alcotest.(check (option string)) "unknown service" None
    (Comp_store.template_of_service store "nonsense")

let test_store_custom_p4 () =
  let s = Comp_store.default () in
  let svc =
    Comp_store.custom_p4 ~name:"my-filter" ~version:`P4_16 ~switches:2 ~recirc:5.0
      ~stages:6.0 ~sram_mb:1.5 ~shared_stages:2.0 ()
  in
  Comp_store.register_custom_p4 s svc;
  Alcotest.(check (option string)) "under custom-p4 template" (Some "custom-p4")
    (Comp_store.template_of_service s "my-filter");
  Alcotest.(check bool) "p4-16 feature" true (svc.Comp_store.feature = Comp_store.P4_16);
  Alcotest.(check int) "fixed switch count" 2 (svc.Comp_store.switch_count ~group_size:500);
  let lo, hi = svc.Comp_store.per_instance_range ~group_size:1 in
  Alcotest.(check bool) "fixed demand" true (Vec.equal lo hi);
  (* A CompReq using the custom service validates and transforms. *)
  let req =
    {
      Comp_req.priority = Workload.Job.Batch;
      composites =
        [
          {
            Comp_req.comp_id = "f";
            template = "custom-p4";
            base = { Comp_req.instances = 3; cpu = 1.0; mem = 1.0; duration = 10.0 };
            inc_alternatives = [ "my-filter" ];
          };
        ];
      connections = [];
    }
  in
  Alcotest.(check bool) "validates" true (Result.is_ok (Comp_req.validate s req));
  let ids = Transformer.Id_gen.create () in
  let poly = Transformer.transform s ids (Rng.create 1) ~job_id:1 ~arrival:0.0 req in
  Alcotest.(check int) "network group of 2 switches" 2
    (List.hd (Poly_req.network_groups poly)).Poly_req.count

let test_store_extensible () =
  let s = Comp_store.default () in
  let custom =
    {
      Comp_store.name = "custom-agg";
      feature = Comp_store.P4_16;
      shape = Comp_store.Single;
      switch_count = (fun ~group_size:_ -> 2);
      per_switch = Vec.of_list [ 0.0; 4.0; 0.0 ];
      per_instance_range = (fun ~group_size:_ -> (Vec.zero 3, Vec.of_list [ 1.0; 2.0; 3.0 ]));
      server_saving = 0.05;
      duration_saving = 0.05;
    }
  in
  Comp_store.add_service s custom;
  Comp_store.add_template s
    { Comp_store.tpl_name = "custom-tpl"; inc_impls = [ "custom-agg" ]; has_server_impl = true };
  Alcotest.(check bool) "registered" true (Comp_store.find_service s "custom-agg" <> None);
  Alcotest.(check (option string)) "template found" (Some "custom-tpl")
    (Comp_store.template_of_service s "custom-agg")

(* ------------------------------------------------------------------ *)
(* CompReq                                                            *)
(* ------------------------------------------------------------------ *)

let server_spec n = { Comp_req.instances = n; cpu = 2.0; mem = 4.0; duration = 60.0 }

let simple_req ?(inc = []) () =
  {
    Comp_req.priority = Workload.Job.Batch;
    composites =
      [
        { Comp_req.comp_id = "web"; template = "server"; base = server_spec 4; inc_alternatives = [] };
        {
          Comp_req.comp_id = "coord";
          template = "coordinator";
          base = server_spec 6;
          inc_alternatives = inc;
        };
      ];
    connections = [ ("web", "coord") ];
  }

let test_comp_req_validate_ok () =
  match Comp_req.validate store (simple_req ~inc:[ "netchain" ] ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_comp_req_validate_catches () =
  let bad_service = simple_req ~inc:[ "bogus" ] () in
  Alcotest.(check bool) "unknown service" true
    (Result.is_error (Comp_req.validate store bad_service));
  let wrong_template =
    {
      (simple_req ()) with
      Comp_req.composites =
        [
          {
            Comp_req.comp_id = "c";
            template = "server";
            base = server_spec 2;
            inc_alternatives = [ "netchain" ] (* server template has no INC impls *);
          };
        ];
      connections = [];
    }
  in
  Alcotest.(check bool) "service not in template" true
    (Result.is_error (Comp_req.validate store wrong_template));
  let dup =
    {
      (simple_req ()) with
      Comp_req.composites =
        [
          { Comp_req.comp_id = "x"; template = "server"; base = server_spec 1; inc_alternatives = [] };
          { Comp_req.comp_id = "x"; template = "server"; base = server_spec 1; inc_alternatives = [] };
        ];
      connections = [];
    }
  in
  Alcotest.(check bool) "duplicate ids" true (Result.is_error (Comp_req.validate store dup));
  let bad_conn = { (simple_req ()) with Comp_req.connections = [ ("web", "nope") ] } in
  Alcotest.(check bool) "bad connection" true (Result.is_error (Comp_req.validate store bad_conn))

let test_comp_req_of_job () =
  let job =
    {
      Workload.Job.id = 9;
      arrival = 3.0;
      priority = Workload.Job.Service;
      groups =
        [
          { Workload.Job.tg_index = 0; count = 2; cpu = 1.0; mem = 2.0; duration = 5.0 };
          { Workload.Job.tg_index = 1; count = 3; cpu = 2.0; mem = 3.0; duration = 7.0 };
        ];
    }
  in
  let req = Comp_req.of_job job in
  Alcotest.(check int) "two composites" 2 (List.length req.composites);
  Alcotest.(check int) "chained" 1 (List.length req.connections);
  Alcotest.(check bool) "validates" true (Result.is_ok (Comp_req.validate store req));
  Alcotest.(check bool) "no inc yet" false (Comp_req.wants_inc req)

let test_comp_req_with_inc_alternative () =
  let req = simple_req () in
  let req = Comp_req.with_inc_alternative req ~comp_id:"coord" ~service:"netchain" in
  Alcotest.(check bool) "wants inc" true (Comp_req.wants_inc req);
  (* Idempotent. *)
  let req2 = Comp_req.with_inc_alternative req ~comp_id:"coord" ~service:"netchain" in
  let coord = Option.get (Comp_req.composite req2 "coord") in
  Alcotest.(check int) "no duplicate" 1 (List.length coord.inc_alternatives)

(* ------------------------------------------------------------------ *)
(* Transformer                                                        *)
(* ------------------------------------------------------------------ *)

let transform ?(req = simple_req ~inc:[ "netchain" ] ()) () =
  let ids = Transformer.Id_gen.create () in
  Transformer.transform store ids (Rng.create 11) ~job_id:1 ~arrival:0.0 req

let test_transform_groups () =
  let poly = transform () in
  (* web: 1 server TG; coord: server variant (1) + netchain variant
     (reduced server + 1 chain network TG) = 4 total. *)
  Alcotest.(check int) "4 task groups" 4 (List.length poly.Poly_req.task_groups);
  Alcotest.(check int) "1 network group" 1 (List.length (Poly_req.network_groups poly));
  Alcotest.(check bool) "has inc" true (Poly_req.has_inc poly);
  Alcotest.(check int) "2 flavor bits" 2 poly.Poly_req.flavor_len

let test_transform_netchain_shape () =
  let poly = transform () in
  let net = List.hd (Poly_req.network_groups poly) in
  (match net.Poly_req.kind with
  | Poly_req.Network_tg n ->
      Alcotest.(check string) "service" "netchain" n.Poly_req.service;
      Alcotest.(check bool) "chain shape" true (n.Poly_req.shape = Comp_store.Chain)
  | Poly_req.Server_tg -> Alcotest.fail "expected network group");
  Alcotest.(check int) "3 switches for small group" 3 net.Poly_req.count;
  Alcotest.(check int) "switch demand dims" 3 (Vec.dim net.Poly_req.demand)

let test_transform_savings () =
  let poly = transform () in
  let coord_groups =
    List.filter (fun tg -> tg.Poly_req.comp_id = "coord") poly.Poly_req.task_groups
  in
  let server_variants =
    List.filter (fun tg -> not (Poly_req.is_network tg)) coord_groups
  in
  (match List.sort (fun a b -> compare b.Poly_req.count a.Poly_req.count) server_variants with
  | [ full; reduced ] ->
      Alcotest.(check int) "full variant" 6 full.Poly_req.count;
      Alcotest.(check bool) "reduced variant smaller" true
        (reduced.Poly_req.count < full.Poly_req.count);
      Alcotest.(check bool) "reduced duration shorter" true
        (reduced.Poly_req.duration < full.Poly_req.duration)
  | _ -> Alcotest.fail "expected two server variants for coord")

let test_transform_exclusive_flavors () =
  let poly = transform () in
  let coord_groups =
    List.filter (fun tg -> tg.Poly_req.comp_id = "coord") poly.Poly_req.task_groups
  in
  let net = List.find Poly_req.is_network coord_groups in
  let full_server =
    List.find (fun tg -> (not (Poly_req.is_network tg)) && tg.Poly_req.count = 6) coord_groups
  in
  Alcotest.(check bool) "exclusive" false
    (Flavor.compatible net.Poly_req.flavor full_server.Poly_req.flavor)

let test_transform_connections () =
  let poly = transform () in
  let web = List.find (fun tg -> tg.Poly_req.comp_id = "web") poly.Poly_req.task_groups in
  (* web connects to all coord groups (3 of them). *)
  Alcotest.(check int) "web connected to coord groups" 3 (List.length web.Poly_req.connected)

let test_transform_distcache_two_tiers () =
  let req =
    {
      Comp_req.priority = Workload.Job.Batch;
      composites =
        [
          {
            Comp_req.comp_id = "cache";
            template = "cache";
            base = server_spec 12;
            inc_alternatives = [ "distcache" ];
          };
        ];
      connections = [];
    }
  in
  let poly = transform ~req () in
  let nets = Poly_req.network_groups poly in
  Alcotest.(check int) "spine and leaf" 2 (List.length nets);
  let roles =
    List.sort compare
      (List.filter_map
         (fun tg ->
           match tg.Poly_req.kind with
           | Poly_req.Network_tg n -> Some n.Poly_req.role
           | Poly_req.Server_tg -> None)
         nets)
  in
  Alcotest.(check (list string)) "roles" [ "leaf"; "spine" ] roles

let test_transform_invalid_raises () =
  Alcotest.(check bool) "invalid raises" true
    (try
       ignore (transform ~req:(simple_req ~inc:[ "bogus" ] ()) ());
       false
     with Invalid_argument _ -> true)

let test_transform_unique_ids () =
  let ids = Transformer.Id_gen.create () in
  let p1 =
    Transformer.transform store ids (Rng.create 1) ~job_id:1 ~arrival:0.0
      (simple_req ~inc:[ "netchain" ] ())
  in
  let p2 =
    Transformer.transform store ids (Rng.create 2) ~job_id:2 ~arrival:1.0
      (simple_req ~inc:[ "harmonia" ] ())
  in
  let all =
    List.map (fun tg -> tg.Poly_req.tg_id) (p1.Poly_req.task_groups @ p2.Poly_req.task_groups)
  in
  Alcotest.(check int) "globally unique" (List.length all)
    (List.length (List.sort_uniq compare all))

(* ------------------------------------------------------------------ *)
(* Api                                                                *)
(* ------------------------------------------------------------------ *)

let test_api_listing1 () =
  (* The paper's List. 1 flow. *)
  let open Hire.Api in
  let c4 = server ~id:"c4" ~instances:12 ~cpu:16.0 ~mem:8.5 ~duration:300.0 in
  let c5 =
    server ~id:"c5" ~instances:6 ~cpu:16.0 ~mem:32.0 ~duration:300.0
    |> with_alternative store ~service:"netchain"
  in
  let req = request_exn store ~priority:Service [ c4; c5 ] ~connections:[ connect c4 c5 ] in
  Alcotest.(check bool) "wants inc" true (Comp_req.wants_inc req);
  Alcotest.(check string) "template rewritten" "coordinator"
    (Option.get (Comp_req.composite req "c5")).Comp_req.template;
  Alcotest.(check bool) "validates" true (Result.is_ok (Comp_req.validate store req))

let test_api_rejects_conflicting_templates () =
  let open Hire.Api in
  let c =
    server ~id:"x" ~instances:4 ~cpu:1.0 ~mem:1.0 ~duration:10.0
    |> with_alternative store ~service:"netchain"
  in
  Alcotest.(check bool) "cross-template alternative rejected" true
    (try
       ignore (with_alternative store ~service:"netcache" c);
       false
     with Invalid_argument _ -> true)

let test_api_multiple_alternatives_same_template () =
  let open Hire.Api in
  let c =
    server ~id:"cache" ~instances:4 ~cpu:1.0 ~mem:1.0 ~duration:10.0
    |> with_alternative store ~service:"netcache"
    |> with_alternative store ~service:"distcache"
  in
  Alcotest.(check int) "two alternatives" 2 (List.length c.Comp_req.inc_alternatives);
  let req = request_exn store [ c ] in
  Alcotest.(check bool) "validates" true (Result.is_ok (Comp_req.validate store req))

let test_api_unknown_service () =
  let open Hire.Api in
  Alcotest.(check bool) "unknown service rejected" true
    (try
       ignore
         (with_alternative store ~service:"warp-drive"
            (server ~id:"x" ~instances:1 ~cpu:1.0 ~mem:1.0 ~duration:1.0));
       false
     with Invalid_argument _ -> true)

let test_api_request_error () =
  let open Hire.Api in
  let a = server ~id:"dup" ~instances:1 ~cpu:1.0 ~mem:1.0 ~duration:1.0 in
  match request store [ a; a ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate ids accepted"

(* ------------------------------------------------------------------ *)
(* Sharing                                                            *)
(* ------------------------------------------------------------------ *)

let mk_sharing ?(supported = fun _ -> [ "netcache"; "netchain" ]) () =
  let topo = Fat_tree.create ~k:4 in
  (topo, Sharing.create ~topo ~capacity:(Vec.of_list [ 100.0; 48.0; 22.0 ]) ~supported)

let reg = Vec.of_list [ 0.0; 8.0; 0.0 ]
let inst = Vec.of_list [ 0.0; 2.0; 6.0 ]

let test_sharing_registration_once () =
  let topo, sh = mk_sharing () in
  let sw = (Fat_tree.tor_switches topo).(0) in
  Sharing.place sh ~switch:sw ~service:"netcache" ~per_switch:reg ~per_instance:inst;
  let a1 = Sharing.available sh sw in
  Alcotest.(check (float 1e-9)) "stages after first" (48.0 -. 8.0 -. 2.0) a1.(1);
  Sharing.place sh ~switch:sw ~service:"netcache" ~per_switch:reg ~per_instance:inst;
  let a2 = Sharing.available sh sw in
  (* Second instance shares the 8-stage registration. *)
  Alcotest.(check (float 1e-9)) "stages after second" (48.0 -. 8.0 -. 4.0) a2.(1);
  Alcotest.(check (float 1e-9)) "sram accumulates" (22.0 -. 12.0) a2.(2);
  Alcotest.(check int) "2 instances" 2 (Sharing.instances sh ~switch:sw ~service:"netcache")

let test_sharing_release_refunds_registration_last () =
  let topo, sh = mk_sharing () in
  let sw = (Fat_tree.tor_switches topo).(0) in
  Sharing.place sh ~switch:sw ~service:"netcache" ~per_switch:reg ~per_instance:inst;
  Sharing.place sh ~switch:sw ~service:"netcache" ~per_switch:reg ~per_instance:inst;
  Sharing.release sh ~switch:sw ~service:"netcache" ~per_instance:inst;
  let a = Sharing.available sh sw in
  Alcotest.(check (float 1e-9)) "registration kept" (48.0 -. 8.0 -. 2.0) a.(1);
  Sharing.release sh ~switch:sw ~service:"netcache" ~per_instance:inst;
  let a = Sharing.available sh sw in
  Alcotest.(check (float 1e-9)) "fully refunded" 48.0 a.(1);
  Alcotest.(check (float 1e-9)) "sram refunded" 22.0 a.(2);
  Alcotest.(check int) "no active services" 0 (Sharing.n_active sh sw)

let test_sharing_effective_demand () =
  let topo, sh = mk_sharing () in
  let sw = (Fat_tree.tor_switches topo).(0) in
  let first = Sharing.effective_demand sh ~switch:sw ~service:"netcache" ~per_switch:reg ~per_instance:inst in
  Alcotest.(check (float 1e-9)) "first pays registration" 10.0 first.(1);
  Sharing.place sh ~switch:sw ~service:"netcache" ~per_switch:reg ~per_instance:inst;
  let second = Sharing.effective_demand sh ~switch:sw ~service:"netcache" ~per_switch:reg ~per_instance:inst in
  Alcotest.(check (float 1e-9)) "second does not" 2.0 second.(1)

let test_sharing_support_and_capacity_checks () =
  let topo, sh = mk_sharing () in
  let sw = (Fat_tree.tor_switches topo).(0) in
  Alcotest.(check bool) "unsupported service" false
    (Sharing.can_place sh ~switch:sw ~service:"sharp" ~per_switch:reg ~per_instance:inst);
  let huge = Vec.of_list [ 0.0; 0.0; 30.0 ] in
  Alcotest.(check bool) "too big" false
    (Sharing.can_place sh ~switch:sw ~service:"netcache" ~per_switch:reg ~per_instance:huge);
  Alcotest.(check bool) "place raises" true
    (try
       Sharing.place sh ~switch:sw ~service:"netcache" ~per_switch:reg ~per_instance:huge;
       false
     with Invalid_argument _ -> true)

let test_sharing_release_without_place_raises () =
  let topo, sh = mk_sharing () in
  let sw = (Fat_tree.tor_switches topo).(0) in
  Alcotest.(check bool) "raises" true
    (try
       Sharing.release sh ~switch:sw ~service:"netcache" ~per_instance:inst;
       false
     with Invalid_argument _ -> true)

let test_sharing_total_used () =
  let topo, sh = mk_sharing () in
  let sw = (Fat_tree.tor_switches topo).(0) in
  Sharing.place sh ~switch:sw ~service:"netcache" ~per_switch:reg ~per_instance:inst;
  let used = Sharing.total_used sh in
  Alcotest.(check (float 1e-9)) "stage usage" 10.0 used.(1);
  Alcotest.(check (float 1e-9)) "sram usage" 6.0 used.(2)

let test_sharing_non_switch_rejected () =
  let topo, sh = mk_sharing () in
  let server = (Fat_tree.servers topo).(0) in
  Alcotest.(check bool) "server id rejected" true
    (try
       ignore (Sharing.available sh server);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Locality                                                           *)
(* ------------------------------------------------------------------ *)

let test_census_counts () =
  let topo = Fat_tree.create ~k:4 in
  let census = Locality.Task_census.create topo in
  let s0 = (Fat_tree.servers topo).(0) in
  let tor = Fat_tree.tor_of_server topo s0 in
  Locality.Task_census.add census ~tg_id:1 ~machine:s0;
  Locality.Task_census.add census ~tg_id:1 ~machine:s0;
  Alcotest.(check int) "total" 2 (Locality.Task_census.total census ~tg_id:1);
  Alcotest.(check int) "under server" 2 (Locality.Task_census.count_under census ~tg_id:1 ~node:s0);
  Alcotest.(check int) "under tor" 2 (Locality.Task_census.count_under census ~tg_id:1 ~node:tor);
  let core = (Fat_tree.core_switches topo).(0) in
  Alcotest.(check int) "under core" 2 (Locality.Task_census.count_under census ~tg_id:1 ~node:core);
  Locality.Task_census.remove census ~tg_id:1 ~machine:s0;
  Alcotest.(check int) "after remove" 1 (Locality.Task_census.total census ~tg_id:1)

let test_census_switch_tasks () =
  let topo = Fat_tree.create ~k:4 in
  let census = Locality.Task_census.create topo in
  let tor = (Fat_tree.tor_switches topo).(0) in
  Locality.Task_census.add census ~tg_id:2 ~machine:tor;
  Alcotest.(check (list int)) "switches" [ tor ] (Locality.Task_census.switches census ~tg_id:2);
  Alcotest.(check int) "under itself" 1
    (Locality.Task_census.count_under census ~tg_id:2 ~node:tor)

let test_upsilon_prefers_colocated_subtree () =
  let topo = Fat_tree.create ~k:4 in
  let census = Locality.Task_census.create topo in
  let s0 = (Fat_tree.servers topo).(0) in
  let tor_near = Fat_tree.tor_of_server topo s0 in
  let tor_far = (Fat_tree.tor_switches topo).(7) in
  Locality.Task_census.add census ~tg_id:1 ~machine:s0;
  let near = Locality.upsilon topo census ~tg_ids:[ 1 ] ~node:tor_near ~group_size:1 in
  let far = Locality.upsilon topo census ~tg_ids:[ 1 ] ~node:tor_far ~group_size:1 in
  Alcotest.(check bool) "near subtree scores better (lower)" true (near < far);
  Alcotest.(check (float 1e-9)) "far subtree has nothing" 1.0 far

let test_gain_propagates_and_decays () =
  let topo = Fat_tree.create ~k:4 in
  let census = Locality.Task_census.create topo in
  let tor = (Fat_tree.tor_switches topo).(0) in
  Locality.Task_census.add census ~tg_id:1 ~machine:tor;
  let gain = Locality.Gain.compute topo census ~related:[ 1 ] ~gamma:64 ~xi:2 in
  Alcotest.(check int) "source gain" 64 (Locality.Gain.at gain tor);
  let agg = List.hd (Fat_tree.parents topo tor) in
  Alcotest.(check int) "one hop decayed" 32 (Locality.Gain.at gain agg);
  Alcotest.(check (float 1e-9)) "normalized source" 1.0 (Locality.Gain.normalized gain tor);
  (* A ToR in another pod is 4 switch-hops away: 64/2^4 = 4. *)
  let far_tor = (Fat_tree.tor_switches topo).(7) in
  Alcotest.(check int) "far decayed" 4 (Locality.Gain.at gain far_tor)

let test_gain_empty_sources () =
  let topo = Fat_tree.create ~k:4 in
  let census = Locality.Task_census.create topo in
  let gain = Locality.Gain.compute topo census ~related:[ 99 ] ~gamma:64 ~xi:2 in
  Alcotest.(check (float 1e-9)) "no gain anywhere" 0.0
    (Locality.Gain.normalized gain (Fat_tree.tor_switches topo).(0))

(* ------------------------------------------------------------------ *)
(* Cost model                                                         *)
(* ------------------------------------------------------------------ *)

let params = Cost_model.default_params

let test_phi_pref_shape () =
  Alcotest.(check (float 1e-9)) "fresh job max" 3.0 (Cost_model.phi_pref ~waiting:0.1 params);
  Alcotest.(check (float 1e-9)) "past upper zero" 0.0 (Cost_model.phi_pref ~waiting:3.0 params);
  let mid = Cost_model.phi_pref ~waiting:1.2 params in
  Alcotest.(check bool) "decays" true (mid > 0.0 && mid < 3.0);
  let later = Cost_model.phi_pref ~waiting:1.8 params in
  Alcotest.(check bool) "monotone" true (later < mid)

let test_phi_w_shape () =
  Alcotest.(check (float 1e-9)) "zero at arrival" 0.0 (Cost_model.phi_w ~waiting:0.0 params);
  Alcotest.(check (float 1e-9)) "one past threshold" 1.0 (Cost_model.phi_w ~waiting:1.0 params);
  let mid = Cost_model.phi_w ~waiting:0.25 params in
  Alcotest.(check bool) "rising" true (mid > 0.0 && mid < 1.0)

let test_phi_new () =
  Alcotest.(check (float 1e-9)) "active service free" 0.0
    (Cost_model.phi_new ~service_active:true ~n_active:3 ~max_possible:8);
  Alcotest.(check (float 1e-9)) "empty switch" 1.0
    (Cost_model.phi_new ~service_active:false ~n_active:0 ~max_possible:8);
  let busy = Cost_model.phi_new ~service_active:false ~n_active:8 ~max_possible:8 in
  Alcotest.(check (float 1e-9)) "busy switch halves" 0.5 busy

let test_phi_tor () =
  let topo = Fat_tree.create ~k:4 in
  Alcotest.(check (float 1e-9)) "tor 0" 0.0
    (Cost_model.phi_tor topo ~switch:(Fat_tree.tor_switches topo).(0));
  Alcotest.(check (float 1e-9)) "agg 0.5" 0.5
    (Cost_model.phi_tor topo ~switch:(Fat_tree.agg_switches topo).(0));
  Alcotest.(check (float 1e-9)) "core 1" 1.0
    (Cost_model.phi_tor topo ~switch:(Fat_tree.core_switches topo).(0))

let test_phi_delay_monotonicity () =
  let base = Cost_model.phi_delay ~waiting:10.0 ~max_waiting:100.0 ~placed:0 ~total:10 in
  let waited = Cost_model.phi_delay ~waiting:50.0 ~max_waiting:100.0 ~placed:0 ~total:10 in
  Alcotest.(check bool) "longer wait costs more to postpone" true (waited > base);
  let nearly_done = Cost_model.phi_delay ~waiting:10.0 ~max_waiting:100.0 ~placed:9 ~total:10 in
  Alcotest.(check bool) "mostly-placed costs more to postpone" true (nearly_done > base)

let test_flatten_and_edges () =
  Alcotest.(check int) "flatten scales" 500 (Cost_model.flatten [ 0.5 ] ~penalty:0.0 params);
  Alcotest.(check int) "penalty added" 1500 (Cost_model.flatten [ 0.5 ] ~penalty:1.0 params);
  Alcotest.(check int) "empty components" 1000 (Cost_model.flatten [] ~penalty:1.0 params);
  Alcotest.(check int) "s_to_f" 1000 (Cost_model.s_to_f params);
  let g_to_p = Cost_model.g_to_p ~phi_delay:0.0 params in
  Alcotest.(check int) "postpone carries penalty 5" 5000 g_to_p;
  Alcotest.(check bool) "f_to_p carries penalty 3" true
    (Cost_model.f_to_p ~phi_w:0.0 params = 3000)

let test_fallback_penalty () =
  let plain = Cost_model.f_to_g ~phi_xhat:0.2 ~phi_pref:0.0 params in
  let fb = Cost_model.f_to_g ~phi_xhat:0.2 ~phi_pref:0.0 ~fallback:true params in
  Alcotest.(check bool) "fallback variant costs more" true (fb > plain)

let test_flatten_weights () =
  let w = Cost_model.flatten ~weights:[| 1.0; 3.0 |] [ 0.0; 1.0 ] ~penalty:0.0 params in
  Alcotest.(check int) "weighted" 750 w

(* ------------------------------------------------------------------ *)
(* Pending                                                            *)
(* ------------------------------------------------------------------ *)

let test_pending_lifecycle () =
  let poly = transform () in
  let job = Pending.of_poly poly in
  Alcotest.(check int) "materialized web TG" 1 (List.length (Pending.materialized job));
  Alcotest.(check int) "3 undecided" 3 (List.length (Pending.undecided job));
  Alcotest.(check bool) "flavor open" true (Pending.flavor_open job);
  (* Decide the INC variant. *)
  let net_ts =
    List.find (fun ts -> Poly_req.is_network ts.Pending.tg) (Pending.undecided job)
  in
  let dropped = Pending.decide job net_ts in
  Alcotest.(check int) "server variant dropped" 1 (List.length dropped);
  Alcotest.(check bool) "flavor closed" false (Pending.flavor_open job);
  Alcotest.(check int) "3 materialized now" 3 (List.length (Pending.materialized job))

let test_pending_force_fallback () =
  let poly = transform () in
  let job = Pending.of_poly poly in
  let dropped = Pending.force_server_fallback job in
  Alcotest.(check bool) "network dropped" true
    (List.exists Poly_req.is_network (List.map (fun ts -> ts.Pending.tg) dropped));
  Alcotest.(check bool) "locked" true job.Pending.inc_flavor_locked;
  Alcotest.(check bool) "no network group materialized" true
    (List.for_all
       (fun ts -> not (Poly_req.is_network ts.Pending.tg))
       (Pending.materialized job))

let test_pending_place_and_progress () =
  let poly = transform () in
  let job = Pending.of_poly poly in
  let web = List.hd (Pending.materialized job) in
  Alcotest.(check bool) "work pending" true (Pending.has_pending_work job);
  for i = 1 to web.Pending.tg.Poly_req.count do
    Pending.place job web ~machine:(100 + i)
  done;
  Alcotest.(check int) "no remaining" 0 web.Pending.remaining;
  Alcotest.(check bool) "still pending (other composites)" true (Pending.has_pending_work job);
  Alcotest.(check bool) "over-place raises" true
    (try
       Pending.place job web ~machine:1;
       false
     with Invalid_argument _ -> true)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "hire-model"
    [
      ( "flavor",
        Alcotest.test_case "status" `Quick test_flavor_status
        :: Alcotest.test_case "apply" `Quick test_flavor_apply
        :: Alcotest.test_case "compatible" `Quick test_flavor_compatible
        :: Alcotest.test_case "builder" `Quick test_flavor_builder
        :: qt [ prop_flavor_apply_monotone ] );
      ( "comp_store",
        [
          Alcotest.test_case "paper catalogue" `Quick test_store_has_paper_catalogue;
          Alcotest.test_case "switch counts" `Quick test_store_switch_counts;
          Alcotest.test_case "netcache registration" `Quick test_store_netcache_registration;
          Alcotest.test_case "demand ranges" `Quick test_store_demand_draw_in_range;
          Alcotest.test_case "templates" `Quick test_store_templates;
          Alcotest.test_case "extensible" `Quick test_store_extensible;
          Alcotest.test_case "custom p4" `Quick test_store_custom_p4;
        ] );
      ( "comp_req",
        [
          Alcotest.test_case "validate ok" `Quick test_comp_req_validate_ok;
          Alcotest.test_case "validate catches" `Quick test_comp_req_validate_catches;
          Alcotest.test_case "of_job" `Quick test_comp_req_of_job;
          Alcotest.test_case "with_inc_alternative" `Quick test_comp_req_with_inc_alternative;
        ] );
      ( "transformer",
        [
          Alcotest.test_case "groups" `Quick test_transform_groups;
          Alcotest.test_case "netchain shape" `Quick test_transform_netchain_shape;
          Alcotest.test_case "savings" `Quick test_transform_savings;
          Alcotest.test_case "exclusive flavors" `Quick test_transform_exclusive_flavors;
          Alcotest.test_case "connections" `Quick test_transform_connections;
          Alcotest.test_case "distcache two tiers" `Quick test_transform_distcache_two_tiers;
          Alcotest.test_case "invalid raises" `Quick test_transform_invalid_raises;
          Alcotest.test_case "unique ids" `Quick test_transform_unique_ids;
        ] );
      ( "api",
        [
          Alcotest.test_case "listing 1 flow" `Quick test_api_listing1;
          Alcotest.test_case "conflicting templates" `Quick test_api_rejects_conflicting_templates;
          Alcotest.test_case "multi alternatives" `Quick test_api_multiple_alternatives_same_template;
          Alcotest.test_case "unknown service" `Quick test_api_unknown_service;
          Alcotest.test_case "request error" `Quick test_api_request_error;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "registration once" `Quick test_sharing_registration_once;
          Alcotest.test_case "release refunds" `Quick test_sharing_release_refunds_registration_last;
          Alcotest.test_case "effective demand" `Quick test_sharing_effective_demand;
          Alcotest.test_case "support/capacity" `Quick test_sharing_support_and_capacity_checks;
          Alcotest.test_case "release without place" `Quick test_sharing_release_without_place_raises;
          Alcotest.test_case "total used" `Quick test_sharing_total_used;
          Alcotest.test_case "non-switch rejected" `Quick test_sharing_non_switch_rejected;
        ] );
      ( "locality",
        [
          Alcotest.test_case "census counts" `Quick test_census_counts;
          Alcotest.test_case "census switch tasks" `Quick test_census_switch_tasks;
          Alcotest.test_case "upsilon" `Quick test_upsilon_prefers_colocated_subtree;
          Alcotest.test_case "gain propagation" `Quick test_gain_propagates_and_decays;
          Alcotest.test_case "gain empty" `Quick test_gain_empty_sources;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "phi_pref" `Quick test_phi_pref_shape;
          Alcotest.test_case "phi_w" `Quick test_phi_w_shape;
          Alcotest.test_case "phi_new" `Quick test_phi_new;
          Alcotest.test_case "phi_tor" `Quick test_phi_tor;
          Alcotest.test_case "phi_delay" `Quick test_phi_delay_monotonicity;
          Alcotest.test_case "flatten/edges" `Quick test_flatten_and_edges;
          Alcotest.test_case "fallback penalty" `Quick test_fallback_penalty;
          Alcotest.test_case "flatten weights" `Quick test_flatten_weights;
        ] );
      ( "pending",
        [
          Alcotest.test_case "lifecycle" `Quick test_pending_lifecycle;
          Alcotest.test_case "force fallback" `Quick test_pending_force_fallback;
          Alcotest.test_case "place/progress" `Quick test_pending_place_and_progress;
        ] );
    ]
