(* Unit and property tests for the prelude library: RNG, heap, stats,
   vectors. *)

open Prelude

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Rng.int a 1000) (Rng.int b 1000)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_in_bounds () =
  let r = Rng.create 4 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_rng_uniformity () =
  (* Chi-square-ish sanity: each of 10 buckets should get 10% +- 2%. *)
  let r = Rng.create 5 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "bucket near 0.1" true (frac > 0.08 && frac < 0.12))
    counts

let test_rng_float_bounds () =
  let r = Rng.create 6 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 3.0 in
    Alcotest.(check bool) "in [0,3)" true (v >= 0.0 && v < 3.0)
  done

let test_rng_exponential_mean () =
  let r = Rng.create 8 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~mean:2.0
  done;
  let m = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 2" true (m > 1.9 && m < 2.1)

let test_rng_bernoulli () =
  let r = Rng.create 10 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p near 0.3" true (frac > 0.28 && frac < 0.32)

let test_rng_pareto_scale () =
  let r = Rng.create 11 in
  for _ = 1 to 1_000 do
    let v = Rng.pareto r ~scale:1.5 ~shape:2.0 in
    Alcotest.(check bool) ">= scale" true (v >= 1.5)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 12 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let r = Rng.create 13 in
  let arr = Array.init 20 (fun i -> i) in
  let s = Rng.sample_without_replacement r ~n:8 arr in
  Alcotest.(check int) "size" 8 (List.length s);
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare s));
  let s_all = Rng.sample_without_replacement r ~n:100 arr in
  Alcotest.(check int) "clamped to population" 20 (List.length s_all)

let test_rng_weighted_choice () =
  let r = Rng.create 14 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.weighted_choice r [ (3.0, `A); (1.0, `B) ] = `A then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "A near 0.75" true (frac > 0.72 && frac < 0.78)

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 2; 3 ];
  Alcotest.(check int) "size" 5 (Heap.size h);
  Alcotest.(check int) "peek" 1 (Heap.peek h);
  let out = List.init 5 (fun _ -> Heap.pop h) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] out;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_empty_pop () =
  let h : int Heap.t = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Heap.pop h));
  Alcotest.check_raises "peek empty" Not_found (fun () -> ignore (Heap.peek h))

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let out = List.init (List.length xs) (fun _ -> Heap.pop h) in
      out = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty mean" 0.0 (Stats.mean [])

let test_stats_stddev () =
  check_float "stddev" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]);
  check_float "single" 0.0 (Stats.stddev [ 5.0 ])

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (Stats.percentile 0.0 xs);
  check_float "p50" 3.0 (Stats.percentile 50.0 xs);
  check_float "p100" 5.0 (Stats.percentile 100.0 xs);
  check_float "p25" 2.0 (Stats.percentile 25.0 xs)

let test_stats_percentile_interpolates () =
  let xs = [ 0.0; 10.0 ] in
  check_float "p50 interp" 5.0 (Stats.percentile 50.0 xs)

let test_stats_percentile_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile 50.0 []))

let test_stats_cdf_points () =
  let pts = Stats.cdf_points ~points:4 [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "4 points" 4 (List.length pts);
  let last_v, last_f = List.nth pts 3 in
  check_float "last value" 4.0 last_v;
  check_float "last frac" 1.0 last_f

let test_stats_ccdf_complements () =
  let cdf = Stats.cdf_points ~points:5 [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  let ccdf = Stats.ccdf_points ~points:5 [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  List.iter2
    (fun (_, f) (_, cf) -> check_float "f + ccdf = 1" 1.0 (f +. cf))
    cdf ccdf

let test_stats_acc () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 1.0; 5.0; 3.0 ];
  Alcotest.(check int) "count" 3 (Stats.Acc.count acc);
  check_float "mean" 3.0 (Stats.Acc.mean acc);
  check_float "min" 1.0 (Stats.Acc.min acc);
  check_float "max" 5.0 (Stats.Acc.max acc);
  check_float "total" 9.0 (Stats.Acc.total acc)

let test_stats_reservoir_small () =
  let r = Stats.Reservoir.create ~capacity:100 (Rng.create 1) in
  for i = 1 to 50 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  Alcotest.(check int) "keeps all below capacity" 50
    (List.length (Stats.Reservoir.samples r));
  Alcotest.(check int) "count" 50 (Stats.Reservoir.count r)

let test_stats_reservoir_bounded () =
  let r = Stats.Reservoir.create ~capacity:10 (Rng.create 2) in
  for i = 1 to 1000 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  Alcotest.(check int) "bounded" 10 (List.length (Stats.Reservoir.samples r));
  Alcotest.(check int) "count sees all" 1000 (Stats.Reservoir.count r)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let p25 = Stats.percentile 25.0 xs
      and p50 = Stats.percentile 50.0 xs
      and p75 = Stats.percentile 75.0 xs in
      p25 <= p50 && p50 <= p75)

(* ------------------------------------------------------------------ *)
(* Vec                                                                *)
(* ------------------------------------------------------------------ *)

let vec = Alcotest.testable Prelude.Vec.pp Prelude.Vec.equal

let test_vec_arith () =
  let a = Vec.of_list [ 1.0; 2.0 ] and b = Vec.of_list [ 3.0; 4.0 ] in
  Alcotest.check vec "add" (Vec.of_list [ 4.0; 6.0 ]) (Vec.add a b);
  Alcotest.check vec "sub" (Vec.of_list [ -2.0; -2.0 ]) (Vec.sub a b);
  Alcotest.check vec "scale" (Vec.of_list [ 2.0; 4.0 ]) (Vec.scale 2.0 a);
  Alcotest.check vec "mul" (Vec.of_list [ 3.0; 8.0 ]) (Vec.mul a b)

let test_vec_hadamard_div () =
  let a = Vec.of_list [ 6.0; 8.0; 1.0 ] and b = Vec.of_list [ 2.0; 4.0; 0.0 ] in
  Alcotest.check vec "div with zero-guard" (Vec.of_list [ 3.0; 2.0; 0.0 ]) (Vec.div a b)

let test_vec_le_fits () =
  let d = Vec.of_list [ 1.0; 2.0 ] and r = Vec.of_list [ 1.0; 3.0 ] in
  Alcotest.(check bool) "le" true (Vec.le d r);
  Alcotest.(check bool) "fits" true (Vec.fits ~demand:d ~available:r);
  Alcotest.(check bool) "not fits" false (Vec.fits ~demand:r ~available:d)

let test_vec_mutation () =
  let acc = Vec.zero 2 in
  Vec.add_into acc (Vec.of_list [ 1.0; 2.0 ]);
  Vec.add_into acc (Vec.of_list [ 3.0; 1.0 ]);
  Alcotest.check vec "accumulated" (Vec.of_list [ 4.0; 3.0 ]) acc;
  Vec.sub_into acc (Vec.of_list [ 1.0; 1.0 ]);
  Alcotest.check vec "subtracted" (Vec.of_list [ 3.0; 2.0 ]) acc

let test_vec_summary () =
  let v = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  check_float "avg" 2.0 (Vec.avg v);
  check_float "max" 3.0 (Vec.max_coord v);
  check_float "dot" 14.0 (Vec.dot v v);
  Alcotest.(check bool) "not zero" false (Vec.is_zero v);
  Alcotest.(check bool) "zero" true (Vec.is_zero (Vec.zero 3))

let test_vec_dim_mismatch () =
  let a = Vec.of_list [ 1.0 ] and b = Vec.of_list [ 1.0; 2.0 ] in
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (1 vs 2)") (fun () ->
      ignore (Vec.add a b))

let test_vec_clamp () =
  Alcotest.check vec "clamp" (Vec.of_list [ 0.0; 2.0 ])
    (Vec.clamp_nonneg (Vec.of_list [ -1.0; 2.0 ]))

let prop_vec_add_commutes =
  let gen = QCheck.(list_of_size (QCheck.Gen.return 4) (float_range (-1000.) 1000.)) in
  QCheck.Test.make ~name:"vec add commutes" ~count:200 (QCheck.pair gen gen)
    (fun (xs, ys) ->
      let a = Prelude.Vec.of_list xs and b = Prelude.Vec.of_list ys in
      Prelude.Vec.equal (Prelude.Vec.add a b) (Prelude.Vec.add b a))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "pareto scale" `Quick test_rng_pareto_scale;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "weighted choice" `Quick test_rng_weighted_choice;
        ] );
      ( "heap",
        Alcotest.test_case "basic" `Quick test_heap_basic
        :: Alcotest.test_case "empty pop" `Quick test_heap_empty_pop
        :: Alcotest.test_case "clear" `Quick test_heap_clear
        :: qt [ prop_heap_sorts ] );
      ( "stats",
        Alcotest.test_case "mean" `Quick test_stats_mean
        :: Alcotest.test_case "stddev" `Quick test_stats_stddev
        :: Alcotest.test_case "percentile" `Quick test_stats_percentile
        :: Alcotest.test_case "percentile interpolates" `Quick
             test_stats_percentile_interpolates
        :: Alcotest.test_case "percentile empty" `Quick test_stats_percentile_empty
        :: Alcotest.test_case "cdf points" `Quick test_stats_cdf_points
        :: Alcotest.test_case "ccdf complements" `Quick test_stats_ccdf_complements
        :: Alcotest.test_case "acc" `Quick test_stats_acc
        :: Alcotest.test_case "reservoir small" `Quick test_stats_reservoir_small
        :: Alcotest.test_case "reservoir bounded" `Quick test_stats_reservoir_bounded
        :: qt [ prop_percentile_monotone ] );
      ( "vec",
        Alcotest.test_case "arith" `Quick test_vec_arith
        :: Alcotest.test_case "hadamard div" `Quick test_vec_hadamard_div
        :: Alcotest.test_case "le/fits" `Quick test_vec_le_fits
        :: Alcotest.test_case "mutation" `Quick test_vec_mutation
        :: Alcotest.test_case "summary" `Quick test_vec_summary
        :: Alcotest.test_case "dim mismatch" `Quick test_vec_dim_mismatch
        :: Alcotest.test_case "clamp" `Quick test_vec_clamp
        :: qt [ prop_vec_add_commutes ] );
    ]
