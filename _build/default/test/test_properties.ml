(* Randomized end-to-end invariants across the stack, complementing the
   per-module suites:

   - the sharing ledger conserves resources under arbitrary valid
     place/release sequences and never over-commits a switch;
   - HIRE flow-network rounds only emit feasible placements, at most one
     per machine, chains on distinct switches, and at most one flavor
     pick per job;
   - mode handling never resurrects withdrawn variants;
   - fat-tree structural identities hold for every even k. *)

module Poly_req = Hire.Poly_req
module Comp_req = Hire.Comp_req
module Comp_store = Hire.Comp_store
module Transformer = Hire.Transformer
module Pending = Hire.Pending
module Sharing = Hire.Sharing
module Fat_tree = Topology.Fat_tree
module Vec = Prelude.Vec
module Rng = Prelude.Rng

let store = Comp_store.default ()

(* ------------------------------------------------------------------ *)
(* Sharing ledger                                                     *)
(* ------------------------------------------------------------------ *)

let prop_sharing_conserves =
  QCheck.Test.make ~name:"sharing ledger conserves under random place/release" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let topo = Fat_tree.create ~k:4 in
      let services = Array.to_list (Comp_store.service_names store) in
      let sh =
        Sharing.create ~topo ~capacity:Topology.Resource.Switch.default_capacity
          ~supported:(fun _ -> services)
      in
      let capacity = Sharing.capacity sh in
      let switches = Sharing.switch_ids sh in
      (* Multiset of live instances we can release later. *)
      let live = ref [] in
      let ok = ref true in
      for _ = 1 to 200 do
        if Rng.bool rng || !live = [] then begin
          (* Try a placement with a random service and demand draw. *)
          let svc = Comp_store.service_exn store (Rng.choose rng (Array.of_list services)) in
          let sw = Rng.choose rng switches in
          let per_instance = Comp_store.draw_instance_demand svc rng ~group_size:16 in
          if
            Sharing.can_place sh ~switch:sw ~service:svc.Comp_store.name
              ~per_switch:svc.Comp_store.per_switch ~per_instance
          then begin
            Sharing.place sh ~switch:sw ~service:svc.Comp_store.name
              ~per_switch:svc.Comp_store.per_switch ~per_instance;
            live := (sw, svc.Comp_store.name, per_instance) :: !live
          end
        end
        else begin
          match !live with
          | [] -> ()
          | (sw, service, per_instance) :: rest ->
              Sharing.release sh ~switch:sw ~service ~per_instance;
              live := rest
        end;
        (* Invariant: availability within [0, capacity] everywhere. *)
        Array.iter
          (fun sw ->
            let a = Sharing.available sh sw in
            if not (Vec.le a capacity && Vec.le (Vec.zero (Vec.dim a)) a) then ok := false)
          switches
      done;
      (* Releasing everything restores full capacity. *)
      List.iter
        (fun (sw, service, per_instance) -> Sharing.release sh ~switch:sw ~service ~per_instance)
        !live;
      Array.iter
        (fun sw -> if not (Vec.equal (Sharing.available sh sw) capacity) then ok := false)
        switches;
      !ok && Vec.is_zero (Sharing.total_used sh))

(* ------------------------------------------------------------------ *)
(* Flow-network rounds                                                *)
(* ------------------------------------------------------------------ *)

let random_req rng =
  let services = Comp_store.service_names store in
  let n_comps = 1 + Rng.int rng 3 in
  let composites =
    List.init n_comps (fun i ->
        let with_inc = Rng.bernoulli rng 0.6 in
        let service = Rng.choose rng services in
        let template =
          if with_inc then Option.get (Comp_store.template_of_service store service)
          else "server"
        in
        {
          Comp_req.comp_id = Printf.sprintf "c%d" i;
          template;
          base =
            {
              Comp_req.instances = 1 + Rng.int rng 8;
              cpu = float_of_int (1 + Rng.int rng 8);
              mem = float_of_int (1 + Rng.int rng 16);
              duration = 10.0 +. Rng.float rng 100.0;
            };
          inc_alternatives = (if with_inc then [ service ] else []);
        })
  in
  let connections =
    List.concat
      (List.mapi
         (fun i c ->
           if i = 0 then []
           else [ ((List.nth composites (i - 1)).Comp_req.comp_id, c.Comp_req.comp_id) ])
         composites)
  in
  { Comp_req.priority = (if Rng.bool rng then Workload.Job.Batch else Workload.Job.Service);
    composites; connections }

let run_random_round seed =
  let rng = Rng.create seed in
  let cluster =
    Sim.Cluster.create ~inc_capable_fraction:0.8 ~k:4
      ~setup:(if Rng.bool rng then Sim.Cluster.Homogeneous else Sim.Cluster.Heterogeneous)
      ~services:(Array.to_list (Comp_store.service_names store))
      (Rng.split rng)
  in
  let ids = Transformer.Id_gen.create () in
  let n_jobs = 1 + Rng.int rng 6 in
  let jobs =
    List.init n_jobs (fun i ->
        Pending.of_poly
          (Transformer.transform store ids (Rng.split rng) ~job_id:i ~arrival:0.0
             (random_req rng)))
  in
  let census = Hire.Locality.Task_census.create (Sim.Cluster.topo cluster) in
  let net =
    Hire.Flow_network.build (Sim.Cluster.view cluster) census ~jobs
      ~now:(Rng.float rng 4.0) ~params:Hire.Cost_model.default_params
  in
  (cluster, jobs, Hire.Flow_network.solve_and_extract net)

let prop_round_placements_feasible =
  QCheck.Test.make ~name:"extracted placements are feasible and unique per machine"
    ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let cluster, jobs, outcome = run_random_round seed in
      let machines_used = Hashtbl.create 16 in
      let find_tg tg_id =
        List.find_map (fun job -> Pending.find_tg job tg_id) jobs
      in
      List.for_all
        (fun (tg_id, machine) ->
          (* One new task per machine per round. *)
          let fresh = not (Hashtbl.mem machines_used machine) in
          Hashtbl.replace machines_used machine ();
          match find_tg tg_id with
          | None -> false
          | Some ts -> (
              let tg = ts.Pending.tg in
              match tg.Poly_req.kind with
              | Poly_req.Server_tg ->
                  fresh
                  && Vec.fits ~demand:tg.Poly_req.demand
                       ~available:(Sim.Cluster.server_available cluster machine)
              | Poly_req.Network_tg n ->
                  fresh
                  && Sharing.can_place (Sim.Cluster.sharing cluster) ~switch:machine
                       ~service:n.Poly_req.service ~per_switch:n.Poly_req.per_switch
                       ~per_instance:tg.Poly_req.demand))
        outcome.Hire.Flow_network.placements)

let prop_round_one_flavor_pick_per_job =
  QCheck.Test.make ~name:"at most one flavor pick per job per round" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let _, _, outcome = run_random_round seed in
      let jobs_picked = List.map fst outcome.Hire.Flow_network.flavor_picks in
      List.length jobs_picked = List.length (List.sort_uniq compare jobs_picked))

let prop_round_flow_optimal =
  QCheck.Test.make ~name:"round flows pass the optimality verifier" ~count:30
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let cluster =
        Sim.Cluster.create ~inc_capable_fraction:1.0 ~k:4 ~setup:Sim.Cluster.Homogeneous
          ~services:(Array.to_list (Comp_store.service_names store))
          (Rng.split rng)
      in
      let ids = Transformer.Id_gen.create () in
      let jobs =
        List.init 3 (fun i ->
            Pending.of_poly
              (Transformer.transform store ids (Rng.split rng) ~job_id:i ~arrival:0.0
                 (random_req rng)))
      in
      let census = Hire.Locality.Task_census.create (Sim.Cluster.topo cluster) in
      let net =
        Hire.Flow_network.build (Sim.Cluster.view cluster) census ~jobs ~now:1.0
          ~params:Hire.Cost_model.default_params
      in
      let _ = Hire.Flow_network.solve_and_extract net in
      match Flow.Verify.check (Hire.Flow_network.graph net) with
      | Ok () -> true
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Scheduler end-to-end                                               *)
(* ------------------------------------------------------------------ *)

let prop_hire_rounds_never_overcommit =
  QCheck.Test.make ~name:"driving HIRE rounds never over-commits the cluster" ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let cluster =
        Sim.Cluster.create ~inc_capable_fraction:0.8 ~k:4 ~setup:Sim.Cluster.Homogeneous
          ~services:(Array.to_list (Comp_store.service_names store))
          (Rng.split rng)
      in
      let sched = Hire.Hire_scheduler.create (Sim.Cluster.view cluster) in
      let ids = Transformer.Id_gen.create () in
      for i = 0 to 3 do
        Hire.Hire_scheduler.submit sched ~time:0.0
          (Transformer.transform store ids (Rng.split rng) ~job_id:i ~arrival:0.0
             (random_req rng))
      done;
      (* Applying every placement must never raise (feasibility was the
         scheduler's promise). *)
      try
        List.iter
          (fun time ->
            let o = Hire.Hire_scheduler.run_round sched ~time in
            List.iter
              (fun ((tg : Poly_req.task_group), m) ->
                match tg.kind with
                | Poly_req.Server_tg ->
                    Sim.Cluster.place_server_task cluster ~server:m ~demand:tg.demand
                | Poly_req.Network_tg _ ->
                    ignore
                      (Sim.Cluster.place_network_task cluster ~switch:m ~tg ~shared:true))
              o.placements)
          [ 0.3; 0.8; 1.3; 1.8; 2.3; 2.8; 3.3 ];
        true
      with Invalid_argument _ -> false)

(* ------------------------------------------------------------------ *)
(* Modes                                                              *)
(* ------------------------------------------------------------------ *)

let prop_modes_decisions_monotone =
  (* Once a variant is withdrawn it never becomes active again (except
     the documented Inc→Server revert). *)
  QCheck.Test.make ~name:"mode decisions are monotone" ~count:80
    QCheck.(pair (int_range 0 1_000_000) bool)
    (fun (seed, concurrent) ->
      let rng = Rng.create seed in
      let modes =
        Schedulers.Modes.create
          (if concurrent then Schedulers.Modes.Concurrent else Schedulers.Modes.Timeout)
      in
      let ids = Transformer.Id_gen.create () in
      Schedulers.Modes.submit modes ~time:0.0
        (Transformer.transform store ids (Rng.split rng) ~job_id:0 ~arrival:0.0
           (random_req rng));
      let ok = ref true in
      let rank = function
        | Schedulers.Modes.Undecided -> 0
        | Schedulers.Modes.Inc -> 1
        | Schedulers.Modes.Server -> 2
      in
      List.iter
        (fun time ->
          ignore (Schedulers.Modes.tick modes ~time);
          List.iter
            (fun (job : Schedulers.Modes.mjob) ->
              let before = rank job.decision in
              (match Schedulers.Modes.active_tgs modes job with
              | rt :: _ when rt.Schedulers.Modes.remaining > 0 && Rng.bool rng ->
                  ignore
                    (Schedulers.Modes.note_placement modes ~time job rt
                       ~machine:(Rng.int rng 30))
              | _ -> ());
              if rank job.decision < before then ok := false)
            (Schedulers.Modes.jobs modes);
          Schedulers.Modes.cleanup modes)
        [ 0.1; 1.0; 5.0; 20.0; 70.0 ];
      !ok)

(* ------------------------------------------------------------------ *)
(* Fat tree across k                                                  *)
(* ------------------------------------------------------------------ *)

let prop_fat_tree_identities =
  QCheck.Test.make ~name:"fat-tree structural identities for every even k" ~count:20
    QCheck.(int_range 1 8)
    (fun half_k ->
      let k = 2 * half_k in
      let t = Fat_tree.create ~k in
      let servers = Array.length (Fat_tree.servers t) in
      let switches = Array.length (Fat_tree.switches t) in
      servers = k * k * k / 4
      && switches = 5 * k * k / 4
      && Array.for_all
           (fun core -> Array.length (Fat_tree.servers_under t core) = servers)
           (Fat_tree.core_switches t)
      && Array.for_all
           (fun tor -> Array.length (Fat_tree.servers_under t tor) = k / 2)
           (Fat_tree.tor_switches t))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ("sharing", qt [ prop_sharing_conserves ]);
      ( "flow_network",
        qt
          [
            prop_round_placements_feasible;
            prop_round_one_flavor_pick_per_job;
            prop_round_flow_optimal;
          ] );
      ("scheduler", qt [ prop_hire_rounds_never_overcommit ]);
      ("modes", qt [ prop_modes_decisions_monotone ]);
      ("fat_tree", qt [ prop_fat_tree_identities ]);
    ]
