(* Tests for the MCMF substrate: graph bookkeeping, known solver
   instances, verifier behaviour, flow decomposition, and randomized
   properties cross-checked with the independent optimality verifier. *)

module Graph = Flow.Graph
module Mcmf = Flow.Mcmf
module Verify = Flow.Verify

(* ------------------------------------------------------------------ *)
(* Graph representation                                               *)
(* ------------------------------------------------------------------ *)

let test_graph_basic () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  Alcotest.(check int) "node count" 2 (Graph.node_count g);
  let arc = Graph.add_arc g ~src:a ~dst:b ~cap:5 ~cost:3 in
  Alcotest.(check int) "arc count" 1 (Graph.arc_count g);
  Alcotest.(check int) "src" a (Graph.src g arc);
  Alcotest.(check int) "dst" b (Graph.dst g arc);
  Alcotest.(check int) "cap" 5 (Graph.capacity g arc);
  Alcotest.(check int) "cost" 3 (Graph.cost g arc);
  Alcotest.(check int) "flow 0" 0 (Graph.flow g arc)

let test_graph_push_residual () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  let arc = Graph.add_arc g ~src:a ~dst:b ~cap:5 ~cost:1 in
  Graph.push g arc 3;
  Alcotest.(check int) "flow" 3 (Graph.flow g arc);
  Alcotest.(check int) "residual fwd" 2 (Graph.residual_cap g arc);
  Alcotest.(check int) "residual rev" 3 (Graph.residual_cap g (Graph.rev arc));
  Graph.push g (Graph.rev arc) 1;
  Alcotest.(check int) "flow after undo" 2 (Graph.flow g arc)

let test_graph_push_over_capacity () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  let arc = Graph.add_arc g ~src:a ~dst:b ~cap:2 ~cost:0 in
  Alcotest.(check bool) "raises" true
    (try
       Graph.push g arc 3;
       false
     with Invalid_argument _ -> true)

let test_graph_supplies () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  Graph.set_supply g a 4;
  Graph.set_supply g b (-4);
  Graph.add_supply g a 2;
  Alcotest.(check int) "supply a" 6 (Graph.supply g a);
  Alcotest.(check int) "total positive" 6 (Graph.total_positive_supply g)

let test_graph_add_nodes_bulk () =
  let g = Graph.create () in
  let first = Graph.add_nodes g 10 in
  Alcotest.(check int) "first id" 0 first;
  Alcotest.(check int) "count" 10 (Graph.node_count g)

let test_graph_reset_flow () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  let arc = Graph.add_arc g ~src:a ~dst:b ~cap:5 ~cost:1 in
  Graph.push g arc 4;
  Graph.reset_flow g;
  Alcotest.(check int) "flow reset" 0 (Graph.flow g arc);
  Alcotest.(check int) "residual reset" 5 (Graph.residual_cap g arc)

let test_graph_iter_out () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g and c = Graph.add_node g in
  let _ = Graph.add_arc g ~src:a ~dst:b ~cap:1 ~cost:0 in
  let _ = Graph.add_arc g ~src:a ~dst:c ~cap:1 ~cost:0 in
  let targets = Graph.fold_out g a [] (fun acc arc -> Graph.dst g arc :: acc) in
  Alcotest.(check (list int)) "out neighbours" [ b; c ] (List.sort compare targets)

(* ------------------------------------------------------------------ *)
(* Solver: hand-checked instances                                     *)
(* ------------------------------------------------------------------ *)

(* Two parallel arcs of different costs: cheap one must fill first. *)
let test_mcmf_prefers_cheap_arc () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  Graph.set_supply g s 10;
  Graph.set_supply g t (-10);
  let cheap = Graph.add_arc g ~src:s ~dst:t ~cap:6 ~cost:1 in
  let pricey = Graph.add_arc g ~src:s ~dst:t ~cap:10 ~cost:5 in
  let r = Mcmf.solve g in
  Alcotest.(check int) "shipped" 10 r.shipped;
  Alcotest.(check int) "unshipped" 0 r.unshipped;
  Alcotest.(check int) "cheap full" 6 (Graph.flow g cheap);
  Alcotest.(check int) "pricey partial" 4 (Graph.flow g pricey);
  Alcotest.(check int) "cost" ((6 * 1) + (4 * 5)) r.total_cost

(* Classic diamond where the min-cost route must split. *)
let test_mcmf_diamond () =
  let g = Graph.create () in
  let s = Graph.add_node g
  and a = Graph.add_node g
  and b = Graph.add_node g
  and t = Graph.add_node g in
  Graph.set_supply g s 4;
  Graph.set_supply g t (-4);
  let _ = Graph.add_arc g ~src:s ~dst:a ~cap:2 ~cost:1 in
  let _ = Graph.add_arc g ~src:s ~dst:b ~cap:2 ~cost:2 in
  let _ = Graph.add_arc g ~src:a ~dst:t ~cap:2 ~cost:1 in
  let _ = Graph.add_arc g ~src:b ~dst:t ~cap:2 ~cost:1 in
  let r = Mcmf.solve g in
  Alcotest.(check int) "shipped" 4 r.shipped;
  Alcotest.(check int) "cost" ((2 * 2) + (2 * 3)) r.total_cost;
  (match Verify.check g with
  | Ok () -> ()
  | Error v -> Alcotest.failf "verify: %a" Verify.pp_violation v)

(* An assignment problem (3 tasks x 3 machines) with known optimum. *)
let test_mcmf_assignment () =
  let g = Graph.create () in
  let tasks = Array.init 3 (fun _ -> Graph.add_node g) in
  let machines = Array.init 3 (fun _ -> Graph.add_node g) in
  let sink = Graph.add_node g in
  Array.iter (fun t -> Graph.set_supply g t 1) tasks;
  Graph.set_supply g sink (-3);
  (* Cost matrix with unique optimum 1+2+2 = 5:
       t0: [1; 4; 5]   t1: [3; 2; 7]   t2: [6; 3; 2] *)
  let costs = [| [| 1; 4; 5 |]; [| 3; 2; 7 |]; [| 6; 3; 2 |] |] in
  Array.iteri
    (fun i t ->
      Array.iteri
        (fun j m -> ignore (Graph.add_arc g ~src:t ~dst:m ~cap:1 ~cost:costs.(i).(j)))
        machines)
    tasks;
  Array.iter (fun m -> ignore (Graph.add_arc g ~src:m ~dst:sink ~cap:1 ~cost:0)) machines;
  let r = Mcmf.solve g in
  Alcotest.(check int) "all assigned" 3 r.shipped;
  Alcotest.(check int) "optimal cost" 5 r.total_cost

(* Infeasible supply must be reported as unshipped, not looped on. *)
let test_mcmf_partial_infeasible () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  Graph.set_supply g s 10;
  Graph.set_supply g t (-10);
  let _ = Graph.add_arc g ~src:s ~dst:t ~cap:3 ~cost:1 in
  let r = Mcmf.solve g in
  Alcotest.(check int) "shipped" 3 r.shipped;
  Alcotest.(check int) "unshipped" 7 r.unshipped

let test_mcmf_disconnected () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  Graph.set_supply g s 5;
  Graph.set_supply g t (-5);
  let r = Mcmf.solve g in
  Alcotest.(check int) "nothing shipped" 0 r.shipped;
  Alcotest.(check int) "all unshipped" 5 r.unshipped

(* Negative arc costs exercised via the Bellman–Ford bootstrap. *)
let test_mcmf_negative_costs () =
  let g = Graph.create () in
  let s = Graph.add_node g
  and a = Graph.add_node g
  and t = Graph.add_node g in
  Graph.set_supply g s 2;
  Graph.set_supply g t (-2);
  let _ = Graph.add_arc g ~src:s ~dst:a ~cap:2 ~cost:(-3) in
  let _ = Graph.add_arc g ~src:a ~dst:t ~cap:2 ~cost:1 in
  let _ = Graph.add_arc g ~src:s ~dst:t ~cap:2 ~cost:0 in
  let r = Mcmf.solve g in
  Alcotest.(check int) "shipped" 2 r.shipped;
  Alcotest.(check int) "cost uses negative arc" (-4) r.total_cost;
  (match Verify.optimal g with
  | Ok () -> ()
  | Error v -> Alcotest.failf "not optimal: %a" Verify.pp_violation v)

(* Multi-source multi-sink. *)
let test_mcmf_multi_source_sink () =
  let g = Graph.create () in
  let s1 = Graph.add_node g
  and s2 = Graph.add_node g
  and t1 = Graph.add_node g
  and t2 = Graph.add_node g in
  Graph.set_supply g s1 3;
  Graph.set_supply g s2 2;
  Graph.set_supply g t1 (-4);
  Graph.set_supply g t2 (-1);
  let _ = Graph.add_arc g ~src:s1 ~dst:t1 ~cap:3 ~cost:1 in
  let _ = Graph.add_arc g ~src:s2 ~dst:t1 ~cap:2 ~cost:2 in
  let _ = Graph.add_arc g ~src:s2 ~dst:t2 ~cap:2 ~cost:1 in
  let r = Mcmf.solve g in
  Alcotest.(check int) "shipped" 5 r.shipped;
  Alcotest.(check int) "cost" (3 + 2 + 1) r.total_cost

(* ------------------------------------------------------------------ *)
(* Verifier                                                           *)
(* ------------------------------------------------------------------ *)

let test_verify_detects_suboptimal () =
  (* Manually push flow along the expensive route only; the residual
     network then contains a negative cycle through the cheap route. *)
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  Graph.set_supply g s 1;
  Graph.set_supply g t (-1);
  let _cheap = Graph.add_arc g ~src:s ~dst:t ~cap:1 ~cost:1 in
  let pricey = Graph.add_arc g ~src:s ~dst:t ~cap:1 ~cost:10 in
  Graph.push g pricey 1;
  (match Verify.optimal g with
  | Error (Verify.Negative_cycle _) -> ()
  | Error v -> Alcotest.failf "unexpected violation: %a" Verify.pp_violation v
  | Ok () -> Alcotest.fail "suboptimal flow accepted")

let test_verify_ok_on_zero_flow () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  let _ = Graph.add_arc g ~src:s ~dst:t ~cap:1 ~cost:1 in
  match Verify.check g with
  | Ok () -> ()
  | Error v -> Alcotest.failf "zero flow rejected: %a" Verify.pp_violation v

(* ------------------------------------------------------------------ *)
(* Decomposition                                                      *)
(* ------------------------------------------------------------------ *)

let test_decompose_simple_path () =
  let g = Graph.create () in
  let s = Graph.add_node g and a = Graph.add_node g and t = Graph.add_node g in
  Graph.set_supply g s 2;
  Graph.set_supply g t (-2);
  let _ = Graph.add_arc g ~src:s ~dst:a ~cap:2 ~cost:1 in
  let _ = Graph.add_arc g ~src:a ~dst:t ~cap:2 ~cost:1 in
  let _ = Mcmf.solve g in
  match Mcmf.decompose g with
  | [ p ] ->
      Alcotest.(check (list int)) "path" [ s; a; t ] p.Mcmf.nodes;
      Alcotest.(check int) "amount" 2 p.Mcmf.amount
  | ps -> Alcotest.failf "expected 1 path, got %d" (List.length ps)

let test_decompose_through_hub () =
  (* Two sources share an intermediate hub; decomposition must still
     account every shipped unit exactly once. *)
  let g = Graph.create () in
  let s1 = Graph.add_node g
  and s2 = Graph.add_node g
  and hub = Graph.add_node g
  and t = Graph.add_node g in
  Graph.set_supply g s1 2;
  Graph.set_supply g s2 3;
  Graph.set_supply g t (-5);
  let _ = Graph.add_arc g ~src:s1 ~dst:hub ~cap:2 ~cost:1 in
  let _ = Graph.add_arc g ~src:s2 ~dst:hub ~cap:3 ~cost:1 in
  let _ = Graph.add_arc g ~src:hub ~dst:t ~cap:5 ~cost:1 in
  let r = Mcmf.solve g in
  let paths = Mcmf.decompose g in
  Alcotest.(check int) "everything shipped" 5 r.Mcmf.shipped;
  Alcotest.(check int) "amount accounted" 5
    (List.fold_left (fun acc p -> acc + p.Mcmf.amount) 0 paths);
  List.iter
    (fun (p : Mcmf.path) ->
      Alcotest.(check bool) "path crosses hub" true (List.mem hub p.nodes))
    paths

let test_decompose_amounts_sum () =
  let g = Graph.create () in
  let s = Graph.add_node g
  and a = Graph.add_node g
  and b = Graph.add_node g
  and t = Graph.add_node g in
  Graph.set_supply g s 5;
  Graph.set_supply g t (-5);
  let _ = Graph.add_arc g ~src:s ~dst:a ~cap:3 ~cost:1 in
  let _ = Graph.add_arc g ~src:s ~dst:b ~cap:2 ~cost:1 in
  let _ = Graph.add_arc g ~src:a ~dst:t ~cap:3 ~cost:1 in
  let _ = Graph.add_arc g ~src:b ~dst:t ~cap:2 ~cost:1 in
  let r = Mcmf.solve g in
  let paths = Mcmf.decompose g in
  let total = List.fold_left (fun acc p -> acc + p.Mcmf.amount) 0 paths in
  Alcotest.(check int) "amounts sum to shipped" r.Mcmf.shipped total

(* Random bipartite scheduling-shaped instances: tasks -> machines ->
   sink, plus an always-feasible "unscheduled" node; the solved flow must
   pass the independent verifier and ship everything. *)
let random_instance seed =
  let rng = Prelude.Rng.create seed in
  let n_tasks = 1 + Prelude.Rng.int rng 12 in
  let n_machines = 1 + Prelude.Rng.int rng 12 in
  let g = Graph.create () in
  let tasks = Array.init n_tasks (fun _ -> Graph.add_node g) in
  let machines = Array.init n_machines (fun _ -> Graph.add_node g) in
  let unsched = Graph.add_node g in
  let sink = Graph.add_node g in
  Array.iter (fun t -> Graph.set_supply g t 1) tasks;
  Graph.set_supply g sink (-n_tasks);
  Array.iter
    (fun t ->
      ignore (Graph.add_arc g ~src:t ~dst:unsched ~cap:1 ~cost:50);
      Array.iter
        (fun m ->
          if Prelude.Rng.bernoulli rng 0.5 then
            ignore (Graph.add_arc g ~src:t ~dst:m ~cap:1 ~cost:(Prelude.Rng.int rng 40)))
        machines)
    tasks;
  Array.iter (fun m -> ignore (Graph.add_arc g ~src:m ~dst:sink ~cap:1 ~cost:0)) machines;
  ignore (Graph.add_arc g ~src:unsched ~dst:sink ~cap:n_tasks ~cost:0);
  g

(* ------------------------------------------------------------------ *)
(* Cost-scaling solver                                                *)
(* ------------------------------------------------------------------ *)

module Cost_scaling = Flow.Cost_scaling

let test_cost_scaling_simple () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  Graph.set_supply g s 10;
  Graph.set_supply g t (-10);
  let cheap = Graph.add_arc g ~src:s ~dst:t ~cap:6 ~cost:1 in
  let pricey = Graph.add_arc g ~src:s ~dst:t ~cap:10 ~cost:5 in
  let r = Cost_scaling.solve g in
  Alcotest.(check int) "shipped" 10 r.Cost_scaling.shipped;
  Alcotest.(check int) "cheap full" 6 (Graph.flow g cheap);
  Alcotest.(check int) "pricey partial" 4 (Graph.flow g pricey);
  Alcotest.(check int) "cost" 26 r.Cost_scaling.total_cost

let test_cost_scaling_infeasible () =
  let g = Graph.create () in
  let s = Graph.add_node g and t = Graph.add_node g in
  Graph.set_supply g s 5;
  Graph.set_supply g t (-5);
  let _ = Graph.add_arc g ~src:s ~dst:t ~cap:2 ~cost:3 in
  let r = Cost_scaling.solve g in
  Alcotest.(check int) "shipped" 2 r.Cost_scaling.shipped;
  Alcotest.(check int) "unshipped" 3 r.Cost_scaling.unshipped;
  Alcotest.(check int) "real cost only" 6 r.Cost_scaling.total_cost

let test_cost_scaling_negative_costs () =
  let g = Graph.create () in
  let s = Graph.add_node g and a = Graph.add_node g and t = Graph.add_node g in
  Graph.set_supply g s 2;
  Graph.set_supply g t (-2);
  let _ = Graph.add_arc g ~src:s ~dst:a ~cap:2 ~cost:(-3) in
  let _ = Graph.add_arc g ~src:a ~dst:t ~cap:2 ~cost:1 in
  let _ = Graph.add_arc g ~src:s ~dst:t ~cap:2 ~cost:0 in
  let r = Cost_scaling.solve g in
  Alcotest.(check int) "shipped" 2 r.Cost_scaling.shipped;
  Alcotest.(check int) "optimal cost" (-4) r.Cost_scaling.total_cost

let test_cost_scaling_alpha_variants () =
  (* The scale factor changes phase counts, never the optimum. *)
  let costs = ref [] in
  List.iter
    (fun alpha ->
      let g = random_instance 4242 in
      let r = Cost_scaling.solve ~alpha g in
      costs := r.Cost_scaling.total_cost :: !costs)
    [ 2; 4; 8; 16 ];
  match !costs with
  | c :: rest -> List.iter (fun c' -> Alcotest.(check int) "same optimum" c c') rest
  | [] -> Alcotest.fail "no runs"

let test_cost_scaling_zero_supply () =
  let g = Graph.create () in
  let a = Graph.add_node g and b = Graph.add_node g in
  let _ = Graph.add_arc g ~src:a ~dst:b ~cap:3 ~cost:1 in
  let r = Cost_scaling.solve g in
  Alcotest.(check int) "nothing to ship" 0 r.Cost_scaling.shipped;
  Alcotest.(check int) "zero cost" 0 r.Cost_scaling.total_cost

let prop_cost_scaling_matches_ssp =
  (* Both exact algorithms must agree on the optimal cost. *)
  QCheck.Test.make ~name:"cost scaling agrees with SSP" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g1 = random_instance seed in
      let g2 = random_instance seed in
      let r1 = Mcmf.solve g1 in
      let r2 = Cost_scaling.solve g2 in
      r1.Mcmf.shipped = r2.Cost_scaling.shipped
      && r1.Mcmf.total_cost = r2.Cost_scaling.total_cost)

let prop_cost_scaling_verified =
  QCheck.Test.make ~name:"cost scaling passes the optimality verifier" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_instance seed in
      let _ = Cost_scaling.solve g in
      match Verify.check g with Ok () -> true | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Randomized properties                                              *)
(* ------------------------------------------------------------------ *)

let prop_solver_output_verified =
  QCheck.Test.make ~name:"solver output passes independent verification" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_instance seed in
      let r = Mcmf.solve g in
      r.Mcmf.unshipped = 0
      && (match Verify.check g with Ok () -> true | Error _ -> false))

let prop_decompose_consistent =
  QCheck.Test.make ~name:"decomposition ships exactly the solved flow" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_instance seed in
      let r = Mcmf.solve g in
      let paths = Mcmf.decompose g in
      let total = List.fold_left (fun acc p -> acc + p.Mcmf.amount) 0 paths in
      total = r.Mcmf.shipped
      && List.for_all (fun p -> p.Mcmf.amount > 0 && List.length p.Mcmf.nodes >= 2) paths)

let prop_solver_cost_not_above_greedy =
  (* Min-cost flow can never cost more than routing everything through the
     expensive unscheduled arc. *)
  QCheck.Test.make ~name:"solver cost <= all-unscheduled cost" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_instance seed in
      let n_tasks =
        let acc = ref 0 in
        for v = 0 to Graph.node_count g - 1 do
          if Graph.supply g v > 0 then acc := !acc + Graph.supply g v
        done;
        !acc
      in
      let r = Mcmf.solve g in
      r.Mcmf.total_cost <= 50 * n_tasks)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "flow"
    [
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "push/residual" `Quick test_graph_push_residual;
          Alcotest.test_case "push over capacity" `Quick test_graph_push_over_capacity;
          Alcotest.test_case "supplies" `Quick test_graph_supplies;
          Alcotest.test_case "bulk nodes" `Quick test_graph_add_nodes_bulk;
          Alcotest.test_case "reset flow" `Quick test_graph_reset_flow;
          Alcotest.test_case "iter out" `Quick test_graph_iter_out;
        ] );
      ( "mcmf",
        [
          Alcotest.test_case "prefers cheap arc" `Quick test_mcmf_prefers_cheap_arc;
          Alcotest.test_case "diamond" `Quick test_mcmf_diamond;
          Alcotest.test_case "assignment" `Quick test_mcmf_assignment;
          Alcotest.test_case "partial infeasible" `Quick test_mcmf_partial_infeasible;
          Alcotest.test_case "disconnected" `Quick test_mcmf_disconnected;
          Alcotest.test_case "negative costs" `Quick test_mcmf_negative_costs;
          Alcotest.test_case "multi source/sink" `Quick test_mcmf_multi_source_sink;
        ] );
      ( "verify",
        [
          Alcotest.test_case "detects suboptimal" `Quick test_verify_detects_suboptimal;
          Alcotest.test_case "ok on zero flow" `Quick test_verify_ok_on_zero_flow;
        ] );
      ( "cost_scaling",
        Alcotest.test_case "simple" `Quick test_cost_scaling_simple
        :: Alcotest.test_case "infeasible" `Quick test_cost_scaling_infeasible
        :: Alcotest.test_case "negative costs" `Quick test_cost_scaling_negative_costs
        :: Alcotest.test_case "alpha variants" `Quick test_cost_scaling_alpha_variants
        :: Alcotest.test_case "zero supply" `Quick test_cost_scaling_zero_supply
        :: qt [ prop_cost_scaling_matches_ssp; prop_cost_scaling_verified ] );
      ( "decompose",
        [
          Alcotest.test_case "simple path" `Quick test_decompose_simple_path;
          Alcotest.test_case "amounts sum" `Quick test_decompose_amounts_sum;
          Alcotest.test_case "through hub" `Quick test_decompose_through_hub;
        ] );
      ( "properties",
        qt
          [
            prop_solver_output_verified;
            prop_decompose_consistent;
            prop_solver_cost_not_above_greedy;
          ] );
    ]
