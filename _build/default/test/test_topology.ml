(* Tests for the fat-tree topology substrate: structure counts, adjacency,
   subtree queries, LCA/cover depths, the detour metric, and resources. *)

module Fat_tree = Topology.Fat_tree
module Resource = Topology.Resource
module Vec = Prelude.Vec

let t4 = Fat_tree.create ~k:4
let t8 = Fat_tree.create ~k:8

(* ------------------------------------------------------------------ *)
(* Structure                                                          *)
(* ------------------------------------------------------------------ *)

let test_counts () =
  (* k=4: 4 cores, 8 aggs, 8 tors, 16 servers. *)
  Alcotest.(check int) "cores" 4 (Array.length (Fat_tree.core_switches t4));
  Alcotest.(check int) "aggs" 8 (Array.length (Fat_tree.agg_switches t4));
  Alcotest.(check int) "tors" 8 (Array.length (Fat_tree.tor_switches t4));
  Alcotest.(check int) "servers" 16 (Array.length (Fat_tree.servers t4));
  Alcotest.(check int) "switches" 20 (Array.length (Fat_tree.switches t4));
  Alcotest.(check int) "total" 36 (Fat_tree.node_count t4)

let test_counts_k8 () =
  (* k=8: 16 cores, 32 aggs, 32 tors, 128 servers. *)
  Alcotest.(check int) "cores" 16 (Array.length (Fat_tree.core_switches t8));
  Alcotest.(check int) "servers" 128 (Array.length (Fat_tree.servers t8))

let test_paper_scale () =
  (* The paper's k=26 tree: 4394 servers, 845 switches. *)
  let t26 = Fat_tree.create ~k:26 in
  Alcotest.(check int) "servers" 4394 (Array.length (Fat_tree.servers t26));
  Alcotest.(check int) "switches" 845 (Array.length (Fat_tree.switches t26))

let test_create_rejects_odd_k () =
  Alcotest.(check bool) "odd k rejected" true
    (try
       ignore (Fat_tree.create ~k:5);
       false
     with Invalid_argument _ -> true)

let test_depths () =
  Array.iter (fun c -> Alcotest.(check int) "core depth" 0 (Fat_tree.depth t4 c))
    (Fat_tree.core_switches t4);
  Array.iter (fun a -> Alcotest.(check int) "agg depth" 1 (Fat_tree.depth t4 a))
    (Fat_tree.agg_switches t4);
  Array.iter (fun x -> Alcotest.(check int) "tor depth" 2 (Fat_tree.depth t4 x))
    (Fat_tree.tor_switches t4);
  Array.iter (fun s -> Alcotest.(check int) "server depth" 3 (Fat_tree.depth t4 s))
    (Fat_tree.servers t4)

(* ------------------------------------------------------------------ *)
(* Adjacency                                                          *)
(* ------------------------------------------------------------------ *)

let test_server_parent_is_its_tor () =
  Array.iter
    (fun s ->
      match Fat_tree.parents t4 s with
      | [ p ] ->
          Alcotest.(check bool) "parent is ToR" true (Fat_tree.kind t4 p = Fat_tree.Tor);
          Alcotest.(check int) "tor_of_server agrees" p (Fat_tree.tor_of_server t4 s)
      | _ -> Alcotest.fail "server must have exactly one parent")
    (Fat_tree.servers t4)

let test_tor_links () =
  Array.iter
    (fun tor ->
      let ups = Fat_tree.parents t4 tor in
      Alcotest.(check int) "tor has k/2 agg parents" 2 (List.length ups);
      List.iter
        (fun a ->
          Alcotest.(check bool) "parent is agg" true (Fat_tree.kind t4 a = Fat_tree.Agg);
          Alcotest.(check int) "same pod" (Fat_tree.node t4 tor).pod (Fat_tree.node t4 a).pod)
        ups;
      Alcotest.(check int) "tor has k/2 servers" 2 (List.length (Fat_tree.children t4 tor)))
    (Fat_tree.tor_switches t4)

let test_agg_core_links () =
  Array.iter
    (fun agg ->
      let ups = Fat_tree.parents t4 agg in
      Alcotest.(check int) "agg has k/2 core parents" 2 (List.length ups))
    (Fat_tree.agg_switches t4);
  Array.iter
    (fun core ->
      Alcotest.(check int) "core has k agg children" 4
        (List.length (Fat_tree.children t4 core)))
    (Fat_tree.core_switches t4)

let test_neighbors_symmetric () =
  for v = 0 to Fat_tree.node_count t4 - 1 do
    List.iter
      (fun u ->
        Alcotest.(check bool)
          (Printf.sprintf "link %d-%d symmetric" v u)
          true
          (List.mem v (Fat_tree.neighbors t4 u)))
      (Fat_tree.neighbors t4 v)
  done

(* ------------------------------------------------------------------ *)
(* Subtrees                                                           *)
(* ------------------------------------------------------------------ *)

let test_servers_under () =
  let tor = (Fat_tree.tor_switches t4).(0) in
  Alcotest.(check int) "tor covers k/2 servers" 2
    (Array.length (Fat_tree.servers_under t4 tor));
  let agg = (Fat_tree.agg_switches t4).(0) in
  Alcotest.(check int) "agg covers pod servers" 4
    (Array.length (Fat_tree.servers_under t4 agg));
  let core = (Fat_tree.core_switches t4).(0) in
  Alcotest.(check int) "core covers all servers" 16
    (Array.length (Fat_tree.servers_under t4 core))

let test_switches_under () =
  let tor = (Fat_tree.tor_switches t4).(0) in
  Alcotest.(check (list int)) "tor subtree is itself" [ tor ]
    (Array.to_list (Fat_tree.switches_under t4 tor));
  let agg = (Fat_tree.agg_switches t4).(0) in
  (* agg + both tors of the pod. *)
  Alcotest.(check int) "agg subtree" 3 (Array.length (Fat_tree.switches_under t4 agg))

(* ------------------------------------------------------------------ *)
(* LCA / cover / detour                                               *)
(* ------------------------------------------------------------------ *)

let server_in_pod t pod idx =
  let servers = Fat_tree.servers t in
  let found =
    Array.to_list servers
    |> List.filter (fun s -> (Fat_tree.node t s).Fat_tree.pod = pod)
  in
  List.nth found idx

let test_lca_servers () =
  let s0 = server_in_pod t4 0 0 and s1 = server_in_pod t4 0 1 in
  (* Same ToR (first two servers of pod 0 share tor 0). *)
  Alcotest.(check int) "same tor" 2 (Fat_tree.lca_depth t4 s0 s1);
  let s2 = server_in_pod t4 0 2 in
  Alcotest.(check int) "same pod, diff tor" 1 (Fat_tree.lca_depth t4 s0 s2);
  let s_other = server_in_pod t4 1 0 in
  Alcotest.(check int) "diff pod" 0 (Fat_tree.lca_depth t4 s0 s_other)

let test_lca_server_switch () =
  let s0 = server_in_pod t4 0 0 in
  let tor = Fat_tree.tor_of_server t4 s0 in
  Alcotest.(check int) "server with its tor" 2 (Fat_tree.lca_depth t4 s0 tor);
  let core = (Fat_tree.core_switches t4).(0) in
  Alcotest.(check int) "server with a core" 0 (Fat_tree.lca_depth t4 s0 core)

let test_lca_self () =
  let s0 = server_in_pod t4 0 0 in
  Alcotest.(check int) "self lca is own depth" 3 (Fat_tree.lca_depth t4 s0 s0)

let test_cover_depth () =
  let s0 = server_in_pod t4 0 0 and s1 = server_in_pod t4 0 1 in
  Alcotest.(check int) "pair same tor" 2 (Fat_tree.cover_depth t4 [ s0; s1 ]);
  let s_far = server_in_pod t4 2 0 in
  Alcotest.(check int) "cross pod" 0 (Fat_tree.cover_depth t4 [ s0; s1; s_far ]);
  Alcotest.(check int) "singleton" 3 (Fat_tree.cover_depth t4 [ s0 ])

let test_detour_zero_when_switch_on_path () =
  let s0 = server_in_pod t4 0 0 and s1 = server_in_pod t4 0 1 in
  let tor = Fat_tree.tor_of_server t4 s0 in
  Alcotest.(check int) "tor on path" 0
    (Fat_tree.detour t4 ~servers:[ s0; s1 ] ~switches:[ tor ])

let test_detour_positive_for_remote_switch () =
  let s0 = server_in_pod t4 0 0 and s1 = server_in_pod t4 0 1 in
  (* Servers covered at ToR level (depth 2); a core switch forces the
     cover to depth 0 -> detour 2. *)
  let core = (Fat_tree.core_switches t4).(0) in
  Alcotest.(check int) "core detour" 2
    (Fat_tree.detour t4 ~servers:[ s0; s1 ] ~switches:[ core ]);
  (* An agg of the same pod costs one level. *)
  let agg = List.hd (Fat_tree.parents t4 (Fat_tree.tor_of_server t4 s0)) in
  Alcotest.(check int) "agg detour" 1
    (Fat_tree.detour t4 ~servers:[ s0; s1 ] ~switches:[ agg ])

let test_detour_no_switches () =
  let s0 = server_in_pod t4 0 0 in
  Alcotest.(check int) "no switches" 0 (Fat_tree.detour t4 ~servers:[ s0 ] ~switches:[])

let test_hop_distance () =
  let s0 = server_in_pod t4 0 0 and s1 = server_in_pod t4 0 1 in
  Alcotest.(check int) "same tor servers" 2 (Fat_tree.hop_distance t4 s0 s1);
  Alcotest.(check int) "self" 0 (Fat_tree.hop_distance t4 s0 s0);
  let tor = Fat_tree.tor_of_server t4 s0 in
  Alcotest.(check int) "server to its tor" 1 (Fat_tree.hop_distance t4 s0 tor)

let prop_lca_symmetric =
  QCheck.Test.make ~name:"lca_depth is symmetric" ~count:300
    QCheck.(pair (int_range 0 35) (int_range 0 35))
    (fun (a, b) -> Fat_tree.lca_depth t4 a b = Fat_tree.lca_depth t4 b a)

let prop_detour_nonnegative =
  let gen = QCheck.(pair (list_of_size Gen.(int_range 1 5) (int_range 20 35))
                      (list_of_size Gen.(int_range 0 4) (int_range 0 19))) in
  QCheck.Test.make ~name:"detour is non-negative and bounded by 3" ~count:300 gen
    (fun (servers, switches) ->
      let d = Fat_tree.detour t4 ~servers ~switches in
      d >= 0 && d <= 3)

(* ------------------------------------------------------------------ *)
(* Leaf-spine                                                         *)
(* ------------------------------------------------------------------ *)

let ls = Fat_tree.create_leaf_spine ~spines:4 ~leafs:8 ~servers_per_leaf:6

let test_leaf_spine_counts () =
  Alcotest.(check int) "spines" 4 (Array.length (Fat_tree.core_switches ls));
  Alcotest.(check int) "no aggregation tier" 0 (Array.length (Fat_tree.agg_switches ls));
  Alcotest.(check int) "leafs" 8 (Array.length (Fat_tree.tor_switches ls));
  Alcotest.(check int) "servers" 48 (Array.length (Fat_tree.servers ls));
  Alcotest.(check int) "switches" 12 (Array.length (Fat_tree.switches ls))

let test_leaf_spine_adjacency () =
  Array.iter
    (fun leaf ->
      Alcotest.(check int) "leaf uplinks to every spine" 4
        (List.length (Fat_tree.parents ls leaf));
      Alcotest.(check int) "servers per leaf" 6 (List.length (Fat_tree.children ls leaf)))
    (Fat_tree.tor_switches ls);
  Array.iter
    (fun spine ->
      Alcotest.(check int) "spine reaches every leaf" 8
        (List.length (Fat_tree.children ls spine));
      Alcotest.(check int) "spine subtree covers all servers" 48
        (Array.length (Fat_tree.servers_under ls spine)))
    (Fat_tree.core_switches ls)

let test_leaf_spine_locality () =
  let servers = Fat_tree.servers ls in
  let s0 = servers.(0) and s1 = servers.(1) and s_far = servers.(47) in
  Alcotest.(check int) "same leaf" 2 (Fat_tree.lca_depth ls s0 s1);
  Alcotest.(check int) "cross leaf goes via spine" 0 (Fat_tree.lca_depth ls s0 s_far);
  let leaf = Fat_tree.tor_of_server ls s0 in
  Alcotest.(check int) "leaf on path" 0 (Fat_tree.detour ls ~servers:[ s0; s1 ] ~switches:[ leaf ]);
  let spine = (Fat_tree.core_switches ls).(0) in
  Alcotest.(check int) "spine detour" 2
    (Fat_tree.detour ls ~servers:[ s0; s1 ] ~switches:[ spine ])

let test_leaf_spine_schedules_end_to_end () =
  (* The whole stack runs unchanged on the multi-path two-tier fabric. *)
  let store = Hire.Comp_store.default () in
  let cluster =
    Sim.Cluster.create
      ~topology:(Fat_tree.create_leaf_spine ~spines:4 ~leafs:8 ~servers_per_leaf:6)
      ~inc_capable_fraction:1.0 ~k:0 ~setup:Sim.Cluster.Homogeneous
      ~services:(Array.to_list (Hire.Comp_store.service_names store))
      (Prelude.Rng.create 3)
  in
  let ids = Hire.Transformer.Id_gen.create () in
  let req =
    {
      Hire.Comp_req.priority = Workload.Job.Batch;
      composites =
        [
          {
            Hire.Comp_req.comp_id = "c";
            template = "coordinator";
            base = { Hire.Comp_req.instances = 10; cpu = 2.0; mem = 4.0; duration = 30.0 };
            inc_alternatives = [ "netchain" ];
          };
        ];
      connections = [];
    }
  in
  let poly = Hire.Transformer.transform store ids (Prelude.Rng.create 4) ~job_id:0 ~arrival:0.0 req in
  let sched = Schedulers.Registry.create "hire" ~seed:1 cluster in
  let result = Sim.Simulator.run cluster sched [ (0.0, poly) ] in
  Alcotest.(check int) "inc served on leaf-spine" 1
    result.Sim.Simulator.report.Sim.Metrics.inc_jobs_served

(* ------------------------------------------------------------------ *)
(* Resources                                                          *)
(* ------------------------------------------------------------------ *)

let test_resource_dims () =
  Alcotest.(check int) "server dims" 2 Resource.Server.count;
  Alcotest.(check int) "switch dims" 3 Resource.Switch.count;
  Alcotest.(check int) "server cap dim" 2 (Vec.dim Resource.Server.default_capacity);
  Alcotest.(check int) "switch cap dim" 3 (Vec.dim Resource.Switch.default_capacity)

let test_paper_switch_capacity () =
  (* §6.2: 48 stages, 22 MB SRAM. *)
  let cap = Resource.Switch.default_capacity in
  Alcotest.(check (float 1e-9)) "stages" 48.0 cap.(Resource.Switch.stages);
  Alcotest.(check (float 1e-9)) "sram" 22.0 cap.(Resource.Switch.sram)

let test_utilization () =
  let capacity = Vec.of_list [ 10.0; 20.0 ] in
  let available = Vec.of_list [ 5.0; 20.0 ] in
  let u = Resource.utilization ~capacity ~available in
  Alcotest.(check (float 1e-9)) "dim0" 0.5 u.(0);
  Alcotest.(check (float 1e-9)) "dim1" 0.0 u.(1)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "topology"
    [
      ( "structure",
        [
          Alcotest.test_case "counts k=4" `Quick test_counts;
          Alcotest.test_case "counts k=8" `Quick test_counts_k8;
          Alcotest.test_case "paper scale k=26" `Quick test_paper_scale;
          Alcotest.test_case "odd k rejected" `Quick test_create_rejects_odd_k;
          Alcotest.test_case "depths" `Quick test_depths;
        ] );
      ( "adjacency",
        [
          Alcotest.test_case "server-tor" `Quick test_server_parent_is_its_tor;
          Alcotest.test_case "tor links" `Quick test_tor_links;
          Alcotest.test_case "agg-core links" `Quick test_agg_core_links;
          Alcotest.test_case "symmetry" `Quick test_neighbors_symmetric;
        ] );
      ( "subtrees",
        [
          Alcotest.test_case "servers under" `Quick test_servers_under;
          Alcotest.test_case "switches under" `Quick test_switches_under;
        ] );
      ( "locality",
        Alcotest.test_case "lca servers" `Quick test_lca_servers
        :: Alcotest.test_case "lca server/switch" `Quick test_lca_server_switch
        :: Alcotest.test_case "lca self" `Quick test_lca_self
        :: Alcotest.test_case "cover depth" `Quick test_cover_depth
        :: Alcotest.test_case "detour on-path" `Quick test_detour_zero_when_switch_on_path
        :: Alcotest.test_case "detour remote" `Quick test_detour_positive_for_remote_switch
        :: Alcotest.test_case "detour no switches" `Quick test_detour_no_switches
        :: Alcotest.test_case "hop distance" `Quick test_hop_distance
        :: qt [ prop_lca_symmetric; prop_detour_nonnegative ] );
      ( "leaf_spine",
        [
          Alcotest.test_case "counts" `Quick test_leaf_spine_counts;
          Alcotest.test_case "adjacency" `Quick test_leaf_spine_adjacency;
          Alcotest.test_case "locality/detour" `Quick test_leaf_spine_locality;
          Alcotest.test_case "schedules end-to-end" `Quick test_leaf_spine_schedules_end_to_end;
        ] );
      ( "resources",
        [
          Alcotest.test_case "dims" `Quick test_resource_dims;
          Alcotest.test_case "paper capacity" `Quick test_paper_switch_capacity;
          Alcotest.test_case "utilization" `Quick test_utilization;
        ] );
    ]
